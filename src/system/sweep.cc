/**
 * @file
 * Implementation of the parallel sweep runner and report.
 */

#include "system/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "system/metrics_capture.hh"
#include "system/trace_capture.hh"

namespace oscar
{

namespace
{

/** Name of the predictor organization for reports. */
const char *
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Cam: return "cam";
      case PredictorKind::DirectMapped: return "direct-mapped";
      case PredictorKind::Infinite: return "infinite";
    }
    return "?";
}

void
writeConfigJson(JsonWriter &w, const SystemConfig &config)
{
    w.beginObject();
    w.field("workload", workloadName(config.workload));
    w.field("policy", policyShortName(config.policy));
    w.field("predictor", predictorName(config.predictor));
    w.field("user_cores", config.userCores);
    w.field("offload_enabled", config.offloadEnabled);
    w.field("dynamic_threshold", config.dynamicThreshold);
    w.field("static_threshold", config.staticThreshold);
    w.field("migration_one_way_cycles", config.migrationOneWayCycles);
    w.field("seed", config.seed);
    w.field("warmup_instructions", config.warmupInstructions);
    w.field("measure_instructions", config.measureInstructions);
    // The paper's one-OS-core machine emits no topology block, so
    // every pre-existing artifact stays byte-identical.
    if (config.offloadEnabled && !config.topology.isDefault()) {
        w.key("topology");
        w.beginObject();
        w.field("os_cores", config.topology.osCores);
        w.field("numa_nodes", config.topology.numaNodes);
        w.field("placement",
                osPlacementName(config.topology.placement));
        w.field("dispatch",
                osDispatchPolicyName(config.topology.dispatch));
        w.field("intra_node_hop_cycles",
                config.topology.intraNodeHopCycles);
        w.field("inter_node_hop_cycles",
                config.topology.interNodeHopCycles);
        w.field("spill_depth", static_cast<std::uint64_t>(
                                   config.topology.spillDepth));
        w.endObject();
    }
    w.endObject();
}

void
writeResultsJson(JsonWriter &w, const SweepPointResult &point)
{
    const SimResults &r = point.results;
    w.beginObject();
    w.field("throughput", r.throughput);
    w.field("normalized_throughput", point.normalized);
    w.field("makespan", r.makespan);
    w.field("retired", r.retired);
    w.field("priv_fraction", r.privFraction);
    w.field("user_l2_hit_rate", r.userL2HitRate);
    w.field("os_l2_hit_rate", r.osL2HitRate);
    w.field("combined_l2_hit_rate", r.combinedL2HitRate);
    w.field("invocations", r.invocations);
    w.field("offloaded", r.offloaded);
    w.field("offload_fraction", r.offloadFraction);
    w.field("mean_invocation_length", r.meanInvocationLength);
    w.field("os_core_utilization", r.osCoreUtilization);
    w.field("mean_queue_delay", r.meanQueueDelay);
    w.field("max_queue_delay", r.maxQueueDelay);
    w.field("decision_cycles", r.decisionCycles);
    w.field("migration_cycles", r.migrationCycles);
    w.field("queue_wait_cycles", r.queueWaitCycles);
    w.field("c2c_transfers", r.c2cTransfers);
    w.field("invalidations", r.invalidations);

    w.key("predictor");
    w.beginObject();
    w.field("samples", r.accuracy.samples());
    w.field("exact_rate", r.accuracy.exactRate());
    w.field("within_tolerance_rate", r.accuracy.withinToleranceRate());
    w.field("miss_rate", r.accuracy.missRate());
    w.field("global_fallback_rate", r.accuracy.globalFallbackRate());
    w.endObject();

    w.key("serving");
    w.beginObject();
    w.field("enabled", r.servingEnabled);
    w.field("requests_completed", r.requestsCompleted);
    w.field("requests_offered", r.requestsOffered);
    w.field("request_throughput_kcy", r.requestThroughput);
    w.field("latency_count", r.requestLatency.count());
    w.field("latency_min", r.requestLatency.min());
    w.field("latency_mean", r.requestLatency.mean());
    w.field("latency_p50", r.requestLatency.quantile(0.50));
    w.field("latency_p95", r.requestLatency.quantile(0.95));
    w.field("latency_p99", r.requestLatency.quantile(0.99));
    w.field("latency_p999", r.requestLatency.quantile(0.999));
    w.field("latency_max", r.requestLatency.max());
    w.field("dispatch_wait_mean", r.requestDispatchWait.mean());
    w.field("dispatch_wait_max", r.requestDispatchWait.max());
    w.endObject();

    // Same gate as writeConfigJson: default-topology points keep the
    // legacy byte layout; multi-queue points add a numa block.
    if (point.config.offloadEnabled &&
        !point.config.topology.isDefault()) {
        w.key("numa");
        w.beginObject();
        w.field("migrations_intra", r.numaMigrationsIntra);
        w.field("migrations_inter", r.numaMigrationsInter);
        w.field("steals", r.steals);
        w.field("spills", r.spills);
        w.key("queues");
        w.beginArray();
        for (const OsQueueResult &q : r.osQueues) {
            w.beginObject();
            w.field("queue", q.queue);
            w.field("core", static_cast<std::uint64_t>(q.core));
            w.field("node", q.node);
            w.field("admitted", q.admitted);
            w.field("steals_in", q.stealsIn);
            w.field("steals_out", q.stealsOut);
            w.field("spills_in", q.spillsIn);
            w.field("spills_out", q.spillsOut);
            w.field("utilization", q.utilization);
            w.field("wait_mean", q.wait.mean());
            w.field("wait_p50", q.wait.quantile(0.50));
            w.field("wait_p95", q.wait.quantile(0.95));
            w.field("wait_p99", q.wait.quantile(0.99));
            w.field("wait_p999", q.wait.quantile(0.999));
            w.field("wait_max", q.wait.max());
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.field("final_threshold", r.finalThreshold);
    w.field("threshold_switches", r.thresholdSwitches);
    w.key("threshold_trajectory");
    w.beginArray();
    for (const ThresholdSample &sample : r.thresholdTrajectory) {
        w.beginObject();
        w.field("instruction", sample.instruction);
        w.field("n", sample.threshold);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writePointJson(JsonWriter &w, const SweepPointResult &point,
               bool include_wall)
{
    w.beginObject();
    w.field("index", static_cast<std::uint64_t>(point.index));
    w.field("label", point.label);
    w.field("ok", point.ok);
    w.field("error", point.error);
    w.field("metrics_path", point.metricsPath);
    if (include_wall)
        w.field("wall_ms", point.wallMs);
    w.key("config");
    writeConfigJson(w, point.config);
    if (point.ok) {
        w.key("results");
        writeResultsJson(w, point);
    }
    w.endObject();
}

// ---------------------------------------------------------------------
// Warm-snapshot cache

/**
 * One warm System per fork group, stored behind a shared_future so
 * concurrent points that share a group simulate the prefix exactly
 * once: the first requester inserts the future and runs the warm-up,
 * later requesters block on it. The snapshot is const and only ever
 * clone()d, which is thread-safe.
 */
std::mutex snapshotMutex;
std::map<std::string,
         std::shared_future<std::shared_ptr<const System>>> snapshotCache;

std::shared_ptr<const System>
warmSnapshot(const SystemConfig &point_config)
{
    const std::string key = sweepWarmupKey(point_config);

    std::promise<std::shared_ptr<const System>> promise;
    std::shared_future<std::shared_ptr<const System>> future;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(snapshotMutex);
        auto it = snapshotCache.find(key);
        if (it != snapshotCache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            snapshotCache.emplace(key, future);
            compute = true;
        }
    }

    if (compute) {
        try {
            auto system = std::make_shared<System>(
                sweepWarmerConfig(point_config));
            system->runToMeasurementStart();
            promise.set_value(
                std::shared_ptr<const System>(std::move(system)));
        } catch (...) {
            // Propagate to every waiter, then forget the entry so a
            // later call can retry instead of replaying the failure.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(snapshotMutex);
            snapshotCache.erase(key);
        }
    }
    return future.get();
}

/**
 * A point may fork only when nothing observes its warm-up: trace or
 * metrics streams must cover the whole run (golden artifacts stay
 * byte-identical), and an empty warm-up has no prefix to share.
 */
bool
forkEligible(const SweepPoint &point)
{
    if (!point.tracePath.empty() || !point.metricsPath.empty())
        return false;
    if (point.config.serving != nullptr)
        return point.config.serving->warmupRequests > 0;
    return point.config.warmupInstructions > 0;
}

} // namespace

SystemConfig
sweepWarmerConfig(const SystemConfig &config)
{
    SystemConfig warmer = config;
    const SystemConfig defaults;
    warmer.policy = PolicyKind::Baseline;
    warmer.predictor = defaults.predictor;
    warmer.dynamicThreshold = false;
    warmer.thresholdFeedback = defaults.thresholdFeedback;
    warmer.staticThreshold = defaults.staticThreshold;
    warmer.thresholdConfig = defaults.thresholdConfig;
    warmer.siDecisionCost = defaults.siDecisionCost;
    warmer.diDecisionCost = defaults.diDecisionCost;
    warmer.hiDecisionCost = defaults.hiDecisionCost;
    warmer.siProfile.reset();
    return warmer;
}

std::string
sweepWarmupKey(const SystemConfig &config)
{
    std::string key = "warm";
    appendConfigEnvironmentKey(key, config);
    char buf[160];
    std::snprintf(buf, sizeof(buf), " cores=%u offload=%d",
                  config.userCores, config.offloadEnabled ? 1 : 0);
    key += buf;
    if (config.offloadEnabled) {
        const TopologyConfig &t = config.topology;
        std::snprintf(buf, sizeof(buf),
                      " topo=%u/%u/%d/%d/%llu/%llu/%zu", t.osCores,
                      t.numaNodes, static_cast<int>(t.placement),
                      static_cast<int>(t.dispatch),
                      static_cast<unsigned long long>(
                          t.intraNodeHopCycles),
                      static_cast<unsigned long long>(
                          t.interNodeHopCycles),
                      t.spillDepth);
        key += buf;
    }
    return key;
}

// ---------------------------------------------------------------------
// SweepAggregate

void
SweepAggregate::add(const SweepPointResult &result)
{
    if (!result.ok)
        return;
    ++points;
    throughput.add(result.results.throughput);
    if (result.normalized > 0.0)
        normalized.add(result.normalized);
    offload.merge(result.results.offloadRatio);
    invocationLengths.merge(result.results.invocationLengths);
    requestLatency.merge(result.results.requestLatency);
    if (result.results.servingEnabled)
        requestThroughput.add(result.results.requestThroughput);
    for (const OsQueueResult &q : result.results.osQueues) {
        queueDelay.merge(q.queueDelay);
        queueWait.merge(q.wait);
    }
    steals += result.results.steals;
    spills += result.results.spills;
}

// ---------------------------------------------------------------------
// ParallelSweepRunner

ParallelSweepRunner::ParallelSweepRunner(SweepOptions options)
    : opts(options)
{
}

unsigned
ParallelSweepRunner::effectiveJobs(std::size_t point_count) const
{
    unsigned jobs = opts.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (point_count < jobs)
        jobs = static_cast<unsigned>(point_count);
    return jobs == 0 ? 1 : jobs;
}

SweepPointResult
ParallelSweepRunner::runPoint(const SweepPoint &point, std::size_t index)
{
    return runPoint(point, index, /*allow_fork=*/false);
}

SweepPointResult
ParallelSweepRunner::runPoint(const SweepPoint &point, std::size_t index,
                              bool allow_fork)
{
    SweepPointResult result;
    result.index = index;
    result.label = point.label;
    result.config = point.config;

    const auto start = std::chrono::steady_clock::now();
    try {
        // Within this point, a bad configuration (oscar_fatal) throws
        // instead of exiting, so one poisoned point cannot take down
        // the rest of the sweep.
        ScopedFatalThrows fatal_throws;
        if (allow_fork && forkEligible(point)) {
            // Fork path: clone the group's shared warm snapshot, swap
            // in this point's measurement configuration, and resume
            // through the measured region only.
            const std::shared_ptr<const System> snapshot =
                warmSnapshot(point.config);
            const std::unique_ptr<System> forked = snapshot->clone();
            forked->reconfigureForMeasurement(point.config);
            result.results = forked->resumeRun();
        } else {
            std::unique_ptr<JsonlTraceSink> trace;
            if (!point.tracePath.empty()) {
                trace = std::make_unique<JsonlTraceSink>(
                    point.tracePath, traceHeaderJson(point.config));
            }
            std::unique_ptr<MetricRegistry> metrics;
            if (!point.metricsPath.empty()) {
                metrics = std::make_unique<MetricRegistry>(
                    point.metricsSampleEvery);
            }
            result.results = ExperimentRunner::run(
                point.config, trace.get(), metrics.get());
            if (metrics &&
                writeMetricsFile(*metrics, point.config,
                                 point.metricsPath)) {
                result.metricsPath = point.metricsPath;
            }
        }
        if (point.normalize) {
            const SimResults base =
                ExperimentRunner::baselineResults(point.config);
            oscar_assert(base.throughput > 0.0);
            result.normalized =
                result.results.throughput / base.throughput;
        }
        result.ok = true;
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    const auto end = std::chrono::steady_clock::now();
    result.wallMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    return result;
}

void
ParallelSweepRunner::clearWarmSnapshotCache()
{
    std::lock_guard<std::mutex> lock(snapshotMutex);
    snapshotCache.clear();
}

std::vector<SweepPointResult>
ParallelSweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<SweepPointResult> results(points.size());
    if (points.empty())
        return results;

    const unsigned jobs = effectiveJobs(points.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            results[i] = runPoint(points[i], i, opts.fork);
        return results;
    }

    // Dynamic work claiming: each worker grabs the next unclaimed
    // index. Results are stored by point index, so the output is
    // independent of claim order.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            results[i] = runPoint(points[i], i, opts.fork);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();
    return results;
}

// ---------------------------------------------------------------------
// SweepReport

SweepReport::SweepReport(std::string title, unsigned jobs)
    : reportTitle(std::move(title)), reportJobs(jobs)
{
}

void
SweepReport::add(const SweepPointResult &result)
{
    points.push_back(result);
}

void
SweepReport::addAll(const std::vector<SweepPointResult> &results)
{
    for (const SweepPointResult &result : results)
        add(result);
}

std::string
SweepReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "oscar.sweep.v1");
    w.field("title", reportTitle);
    w.field("jobs", reportJobs);
    w.key("points");
    w.beginArray();
    for (const SweepPointResult &point : points)
        writePointJson(w, point, /*include_wall=*/true);
    w.endArray();
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

bool
SweepReport::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        oscar_warn("cannot open sweep report file '%s'", path.c_str());
        return false;
    }
    const std::string doc = toJson();
    out.write(doc.data(),
              static_cast<std::streamsize>(doc.size()));
    out << '\n';
    out.flush();
    if (!out) {
        oscar_warn("short write on sweep report file '%s'",
                   path.c_str());
        return false;
    }
    return true;
}

std::string
sweepPointResultsJson(const SweepPointResult &result)
{
    JsonWriter w;
    writePointJson(w, result, /*include_wall=*/false);
    oscar_assert(w.complete());
    return w.str();
}

std::string
sweepTracePath(const std::string &base, std::size_t index)
{
    static const std::string kExt = ".jsonl";
    const std::string suffix = "." + std::to_string(index) + kExt;
    if (base.size() > kExt.size() &&
        base.compare(base.size() - kExt.size(), kExt.size(), kExt) ==
            0) {
        return base.substr(0, base.size() - kExt.size()) + suffix;
    }
    return base + suffix;
}

void
applySweepTracePaths(std::vector<SweepPoint> &points,
                     const std::string &base)
{
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i].tracePath = base.empty() ? std::string()
                                           : sweepTracePath(base, i);
}

void
applySweepMetricsPaths(std::vector<SweepPoint> &points,
                       const std::string &base,
                       std::uint64_t sample_every)
{
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (base.empty()) {
            points[i].metricsPath.clear();
            continue;
        }
        points[i].metricsPath = sweepTracePath(base, i);
        points[i].metricsSampleEvery = sample_every;
    }
}

// ---------------------------------------------------------------------
// BenchOptions

BenchOptions
BenchOptions::parse(int argc, char **argv,
                    const std::string &default_json)
{
    BenchOptions opts;
    opts.jsonPath = default_json;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "--json" || arg == "--trace" ||
            arg == "--metrics" || arg == "--metrics-every") {
            if (i + 1 >= argc)
                oscar_fatal("bench option '%s' requires a value "
                            "(try --help)", arg.c_str());
        }
        if (arg == "--jobs") {
            const char *text = argv[++i];
            char *end = nullptr;
            const unsigned long jobs = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0')
                oscar_fatal("--jobs expects a non-negative integer, "
                            "got '%s'", text);
            opts.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--json") {
            opts.jsonPath = argv[++i];
        } else if (arg == "--no-json") {
            opts.jsonPath.clear();
        } else if (arg == "--no-fork") {
            opts.fork = false;
        } else if (arg == "--trace") {
            opts.tracePath = argv[++i];
        } else if (arg == "--metrics") {
            opts.metricsPath = argv[++i];
        } else if (arg == "--metrics-every") {
            const char *text = argv[++i];
            char *end = nullptr;
            const unsigned long long every =
                std::strtoull(text, &end, 10);
            if (end == text || *end != '\0')
                oscar_fatal("--metrics-every expects a non-negative "
                            "integer, got '%s'", text);
            opts.metricsEvery = every;
        } else if (arg == "--help") {
            std::printf("usage: %s [--jobs N] [--json PATH | --no-json]"
                        " [--no-fork] [--trace PATH] [--metrics PATH]"
                        " [--metrics-every N]\n"
                        "  --jobs N          worker threads (0 = all "
                        "cores; default 1)\n"
                        "  --json P          write the sweep report to "
                        "P (default %s)\n"
                        "  --no-json         skip the report artifact\n"
                        "  --no-fork         run every point fresh "
                        "instead of forking eligible\n"
                        "                    points from a shared warm "
                        "snapshot\n"
                        "  --trace P         stream per-point "
                        "oscar.trace.v1 files derived from P\n"
                        "  --metrics P       write per-point "
                        "oscar.metrics.v1 files derived from P\n"
                        "  --metrics-every N metric sampling period in "
                        "retired instructions\n"
                        "                    (default 1000000; 0 = "
                        "endpoints only)\n",
                        argv[0], default_json.c_str());
            std::exit(0);
        } else {
            oscar_fatal("unknown bench option '%s' (try --help)",
                        arg.c_str());
        }
    }
    return opts;
}

} // namespace oscar
