/**
 * @file
 * Configuration validation.
 */

#include "system/system_config.hh"

#include "sim/logging.hh"

namespace oscar
{

void
SystemConfig::validate() const
{
    if (userCores == 0)
        oscar_fatal("at least one user core is required");
    if (totalCores() > 64)
        oscar_fatal("at most 64 cores are supported");
    if (offloadEnabled)
        topology.validate(userCores);
    if (policy != PolicyKind::Baseline && !offloadEnabled) {
        oscar_fatal("policy %s requires offloadEnabled",
                    policyShortName(policy));
    }
    if (policy == PolicyKind::StaticInstrumentation && !siProfile) {
        oscar_fatal("the SI policy needs an off-line service profile; "
                    "run ExperimentRunner::profileServices first");
    }
    if (measureInstructions == 0)
        oscar_fatal("measureInstructions must be positive");
    if (serving)
        serving->validate();
    if (geometry.l1i.lineBytes != geometry.l2.lineBytes ||
        geometry.l1d.lineBytes != geometry.l2.lineBytes) {
        oscar_fatal("L1/L2 line sizes must match");
    }
}

} // namespace oscar
