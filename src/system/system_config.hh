/**
 * @file
 * Complete configuration of one simulated system (Table II defaults).
 */

#ifndef OSCAR_SYSTEM_SYSTEM_CONFIG_HH_
#define OSCAR_SYSTEM_SYSTEM_CONFIG_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "core/offload_policy.hh"
#include "core/run_length_predictor.hh"
#include "core/threshold_controller.hh"
#include "mem/memory_system.hh"
#include "os/interrupts.hh"
#include "os/migration.hh"
#include "os/numa_topology.hh"
#include "workload/profiles.hh"
#include "workload/request_stream.hh"

namespace oscar
{

/**
 * Everything needed to build and run a System.
 */
struct SystemConfig
{
    /** Benchmark to run on every user core. */
    WorkloadKind workload = WorkloadKind::Apache;

    /** Number of user cores, one thread each. */
    unsigned userCores = 1;

    /** True to provision dedicated OS cores (topology.osCores many). */
    bool offloadEnabled = false;

    /**
     * Multi-OS-core NUMA topology (see os/numa_topology.hh). The
     * default — one OS core, one node, zero hop extras — is the
     * paper's machine and leaves every single-OS-core experiment
     * byte-identical. Only consulted when offloadEnabled is true.
     */
    TopologyConfig topology;

    /** Decision policy. */
    PolicyKind policy = PolicyKind::Baseline;

    /** Predictor organization for DI/HI. */
    PredictorKind predictor = PredictorKind::Cam;

    /** True to drive N with the Section III-B controller. */
    bool dynamicThreshold = false;

    /** Feedback metric driving the dynamic-N controller. */
    enum class ThresholdFeedback : std::uint8_t
    {
        /** The paper's metric: pooled L2 hit rate of all cores. */
        L2HitRate,
        /**
         * Windowed IPC. Deviation from the paper, on by default: in
         * this reproduction the hit-rate metric is not monotone with
         * performance at high migration latencies (migration stalls
         * are invisible to it), which drives the controller to
         * aggressively low N at the conservative design point. See
         * EXPERIMENTS.md.
         */
        WindowIpc,
    };

    /** Which feedback signal the controller consumes. */
    ThresholdFeedback thresholdFeedback = ThresholdFeedback::WindowIpc;

    /** Fixed N when dynamicThreshold is false. */
    InstCount staticThreshold = 1000;

    /** Dynamic-N tuning (epochScale is applied to the paper's epochs). */
    ThresholdConfig thresholdConfig = scaledThresholdConfig();

    /** One-way migration latency in cycles. */
    Cycle migrationOneWayCycles = 5000;

    /** Per-invocation decision cost of instrumented SI entries. */
    Cycle siDecisionCost = 30;

    /** Per-invocation decision cost of DI (all entries). */
    Cycle diDecisionCost = 100;

    /** Per-invocation decision cost of HI (single cycle). */
    Cycle hiDecisionCost = 1;

    /** Cache geometry (Table II). */
    HierarchyGeometry geometry;

    /** Latency parameters (Table II + coherence costs). */
    MemTimings timings;

    /** Device-interrupt stream; mean interarrival in cycles. */
    InterruptConfig interrupts{320'000.0};

    /** Off-line service profile required by the SI policy. */
    std::shared_ptr<const ServiceProfile> siProfile;

    /**
     * Scale on OS services' user-side/shared-buffer access weights
     * (coherence-coupling ablation; 1 = calibrated).
     */
    double osCouplingScale = 1.0;

    /**
     * Request-serving front-end (see workload/request_stream.hh).
     * Null (the default) runs the classic open-ended segment
     * generator; set, the system is driven by client-fleet requests,
     * the run horizon is ServingConfig's request counts (per-thread
     * measureInstructions is ignored), and SimResults carries request
     * throughput and the end-to-end latency distribution.
     */
    std::shared_ptr<const ServingConfig> serving;

    /** Root RNG seed. */
    std::uint64_t seed = 42;

    /** Per-thread instructions of cache/predictor warmup. */
    InstCount warmupInstructions = 400'000;

    /** Per-thread instructions of the measured region. */
    InstCount measureInstructions = 2'000'000;

    /**
     * Threshold config with epochs scaled for simulation-sized runs
     * (1/100 of the paper's 25 M / 100 M instruction epochs).
     */
    static ThresholdConfig
    scaledThresholdConfig()
    {
        ThresholdConfig cfg;
        // 1/200 of the paper's 25 M / 100 M instruction epochs: the
        // controller completes several sampling rounds within the
        // few-million-instruction runs these experiments use.
        cfg.epochScale = 0.005;
        return cfg;
    }

    /** Total cores, including the OS cores if present. */
    unsigned
    totalCores() const
    {
        return userCores + (offloadEnabled ? topology.osCores : 0u);
    }

    /** Core id of the first OS core; offload must be enabled. */
    CoreId osCoreId() const { return userCores; }

    /** Sanity-check the configuration; fatal on user error. */
    void validate() const;
};

} // namespace oscar

#endif // OSCAR_SYSTEM_SYSTEM_CONFIG_HH_
