/**
 * @file
 * The simulated system: user cores running workload threads, an
 * optional dedicated OS core, the coherent memory hierarchy, the
 * off-load decision machinery, and the event-driven execution loop
 * that ties them together.
 */

#ifndef OSCAR_SYSTEM_SYSTEM_HH_
#define OSCAR_SYSTEM_SYSTEM_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/offload_policy.hh"
#include "core/predictor_stats.hh"
#include "core/run_length_predictor.hh"
#include "core/threshold_controller.hh"
#include "cpu/arch_state.hh"
#include "cpu/core.hh"
#include "cpu/exec_engine.hh"
#include "mem/memory_system.hh"
#include "os/interrupts.hh"
#include "os/invocation.hh"
#include "os/migration.hh"
#include "os/numa_topology.hh"
#include "os/os_core_queue.hh"
#include "os/os_queue_set.hh"
#include "os/os_service.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "system/system_config.hh"
#include "workload/address_space.hh"
#include "workload/request_stream.hh"
#include "workload/workload.hh"

#include <deque>

namespace oscar
{

class MetricRegistry;
class TraceSink;

/** One (instruction, N) point of the dynamic-N trajectory. */
struct ThresholdSample
{
    /** Measured instructions retired when the sample was taken. */
    InstCount instruction = 0;
    /** N in force from this point on. */
    InstCount threshold = 0;
};

/**
 * One OS-core queue's measured-region outcome (K per run).
 */
struct OsQueueResult
{
    /** Queue index among the K OS-core queues. */
    std::uint32_t queue = 0;
    /** Core id of the queue's OS core. */
    CoreId core = 0;
    /** NUMA node the OS core lives on. */
    unsigned node = 0;
    /** Requests that started service on this queue's core. */
    std::uint64_t admitted = 0;
    /** Requests this queue's core stole from peers. */
    std::uint64_t stealsIn = 0;
    /** Requests peers stole out of this queue. */
    std::uint64_t stealsOut = 0;
    /** Arrivals that overflowed into this queue. */
    std::uint64_t spillsIn = 0;
    /** Arrivals that overflowed away from this queue. */
    std::uint64_t spillsOut = 0;
    /** Busy fraction of the queue's OS core. */
    double utilization = 0.0;
    /** Cycles requests admitted here waited before starting. */
    RunningStat queueDelay;
    /** The same waits as a mergeable histogram: per-queue histograms
     *  pool bucket-exactly into the system-wide wait distribution. */
    LatencyHistogram wait;
};

/**
 * Everything a run produced, measured over the post-warmup region.
 */
struct SimResults
{
    std::string workload;
    std::string policy;

    /** Cycles from measurement start to the last thread's quota. */
    Cycle makespan = 0;
    /** Instructions (user + OS) retired in the measured region. */
    InstCount retired = 0;
    /** retired / makespan — the paper's throughput metric. */
    double throughput = 0.0;
    /** Fraction of measured instructions retired in privileged mode. */
    double privFraction = 0.0;

    /** Mean L2 hit rate across user cores. */
    double userL2HitRate = 0.0;
    /** OS core L2 hit rate (0 without an OS core). */
    double osL2HitRate = 0.0;
    /** Average across all cores — the dynamic-N feedback metric. */
    double combinedL2HitRate = 0.0;

    /** OS invocations in the measured region. */
    std::uint64_t invocations = 0;
    /** Of which were migrated to the OS core. */
    std::uint64_t offloaded = 0;
    /** offloaded / invocations. */
    double offloadFraction = 0.0;
    /** Mean observed OS run length (instructions). */
    double meanInvocationLength = 0.0;

    /** Busy fraction of the OS core(s), averaged (Table III metric). */
    double osCoreUtilization = 0.0;
    /** Mean cycles off-loads waited for an OS core (Section V-C). */
    double meanQueueDelay = 0.0;
    /** Largest observed queue delay. */
    double maxQueueDelay = 0.0;

    // --- Multi-OS-core NUMA topology ---------------------------------
    /** Per-queue outcomes; one entry per OS core when offload is on. */
    std::vector<OsQueueResult> osQueues;
    /** Off-load + return migrations that stayed on one node. */
    std::uint64_t numaMigrationsIntra = 0;
    /** Migrations (incl. steal/spill transfers) that crossed nodes. */
    std::uint64_t numaMigrationsInter = 0;
    /** Requests moved by work stealing. */
    std::uint64_t steals = 0;
    /** Arrivals that overflowed between queues. */
    std::uint64_t spills = 0;

    /** Cycles burned in decision code across user cores. */
    Cycle decisionCycles = 0;
    /** Cycles burned migrating threads. */
    Cycle migrationCycles = 0;
    /** Cycles threads waited in the OS-core queue. */
    Cycle queueWaitCycles = 0;

    /** Coherence traffic: cache-to-cache transfers (all cores). */
    std::uint64_t c2cTransfers = 0;
    /** Coherence traffic: invalidations received (all cores). */
    std::uint64_t invalidations = 0;

    /** Predictor accuracy, merged across user cores (DI/HI only). */
    PredictorStats accuracy;

    /** N in force when the run ended. */
    InstCount finalThreshold = 0;
    /** Times the dynamic controller changed N. */
    std::uint64_t thresholdSwitches = 0;
    /**
     * N at measurement start and after every controller epoch, in
     * retirement order (dynamic-N runs only) — the threshold
     * trajectory exported to sweep reports.
     */
    std::vector<ThresholdSample> thresholdTrajectory;

    /** Privileged fraction observed during warmup (controller input). */
    double warmupPrivFraction = 0.0;

    /** Thresholds used by the tail accounting below. */
    static constexpr InstCount kTailThresholds[4] = {100, 1000, 5000,
                                                     10000};
    /**
     * Share of *measured instructions* retired inside OS invocations
     * longer than each kTailThresholds entry — the upper bound on the
     * Table III OS-core utilization at that N.
     */
    double osShareAbove[4] = {0.0, 0.0, 0.0, 0.0};

    /** Share of total instructions for invocations above a given N. */
    double osShareAboveN(InstCount n) const;

    /** Measured invocation count per service. */
    std::array<std::uint64_t, kNumServices> invocationsByService{};
    /** Measured off-load count per service. */
    std::array<std::uint64_t, kNumServices> offloadsByService{};

    /**
     * Off-loaded / total invocations as a mergeable counter pair —
     * the distribution-preserving form of offloadFraction for sweep
     * aggregation (pooled counts, not averaged ratios).
     */
    RatioStat offloadRatio;
    /** Measured invocation-length distribution (mergeable). */
    LogHistogram invocationLengths{32};

    // --- Request serving (set when SystemConfig::serving is) ---------
    /** True when the run was driven by the request front-end. */
    bool servingEnabled = false;
    /** Requests completed inside the measured region. */
    std::uint64_t requestsCompleted = 0;
    /** Requests that arrived inside the measured region. */
    std::uint64_t requestsOffered = 0;
    /** Completed requests per 1,000 cycles of measured makespan. */
    double requestThroughput = 0.0;
    /** End-to-end request latency in cycles (queueing + service +
     *  migration), measured region, mergeable across points. */
    LatencyHistogram requestLatency;
    /** Cycles requests waited for a server thread before starting. */
    RunningStat requestDispatchWait;
    /**
     * Per-request span aggregates (see sim/span.hh); null unless a
     * SpanRecorder was attached. Shared so copying SimResults stays
     * cheap; replica merging deep-copies before folding.
     */
    std::shared_ptr<SpanResults> spans;
};

/**
 * One simulated CMP running one benchmark.
 */
class System
{
  public:
    /** Build the system; the configuration is validated here. */
    explicit System(const SystemConfig &config);
    ~System();

    System &operator=(const System &) = delete;

    /** Run warmup + measurement and return the results. */
    SimResults run();

    /**
     * Run warmup only: advance to the first event boundary after the
     * warmup-to-measurement transition, then stop. The system is then
     * a warm snapshot positioned at measurement start — clone() it
     * (cheaply, many times) and drive each clone to completion with
     * resumeRun(). Works in both segment and serving mode.
     */
    void runToMeasurementStart();

    /**
     * Continue a system stopped at measurement start to completion
     * and return the results. resumeRun() on a clone is exactly the
     * continuation the original would have executed: results and
     * traces are byte-identical to an uninterrupted run().
     */
    SimResults resumeRun();

    /**
     * Deep-copy the full simulation state: caches and directory, the
     * event queue (payload events only — asserted), per-thread RNG
     * streams, workload generator state, predictors, policy state,
     * queue occupancy, and all phase/statistics machinery. Trace
     * sinks and metric registries are NOT carried over; the clone
     * starts uninstrumented (attach fresh ones if needed). The clone
     * and the original then evolve independently and deterministically:
     * resuming either produces the stream the original would have.
     */
    std::unique_ptr<System> clone() const;

    /**
     * Re-aim a warmed system (stopped at measurement start) at a
     * different measurement configuration: adopts the new config,
     * rebuilds every thread's policy objects (fresh predictors), reset
     * dynamic-N controller, and re-enters the measured region at the
     * current cycle with all measured statistics zeroed. Only fields
     * that do not affect the warm prefix may differ (policy, predictor
     * organization, thresholds, decision costs, measurement horizon);
     * the prefix-defining fields are asserted equal. This is the fork
     * step of the sweep fast path: one warm snapshot, K cheap clones,
     * each reconfigured to its own policy point.
     */
    void reconfigureForMeasurement(const SystemConfig &config);

    /**
     * Attach an invocation-level trace recorder (see sim/trace.hh).
     *
     * Must be called before run(). The sink is wired through to the
     * OS-core queue, the dynamic-N controller, and every thread's
     * decision policy, and its clock is bound to this system's event
     * queue. Null detaches everything (the default).
     */
    void setTraceSink(TraceSink *sink);

    /**
     * Attach a metric registry (see sim/metrics.hh).
     *
     * Must be called at most once, before run(). Registers every
     * layer's metrics — memory hierarchy, predictors, dynamic-N
     * controller, OS-core queue, event queue, system-level counters,
     * process-wide log counts — and drives the registry's periodic
     * sampler from instruction retirement. The registry must outlive
     * this system. Metrics never feed back into simulation, so
     * attaching one leaves traces and results byte-identical.
     */
    void setMetricRegistry(MetricRegistry *registry);

    /**
     * Attach a per-request span recorder (see sim/span.hh).
     *
     * Serving mode only; must be called before run(). Every phase a
     * request passes through — dispatch wait, user execution, the
     * offload decision, migrations, queueing, steals/spills, OS
     * execution — is recorded as a span segment, and per-phase totals
     * fold into the recorder's histograms at request completion.
     * Spans never feed back into simulation: an attached recorder
     * leaves results and traces byte-identical to a detached run.
     * Null detaches (the default).
     */
    void setSpanRecorder(SpanRecorder *recorder);

    /** The configuration in force. */
    const SystemConfig &config() const { return cfg; }

    /** Memory hierarchy (inspection). */
    const MemorySystem &memory() const { return *mem; }

    /** Dynamic-N controller (inspection). */
    const ThresholdController &thresholdController() const
    {
        return controller;
    }

    /** OS-core queue k (inspection); default the first. */
    const OsCoreQueue &osQueue(unsigned k = 0) const
    {
        return queues.queue(k);
    }

    /** The queue set (inspection). */
    const OsQueueSet &osQueues() const { return queues; }

    /** The resolved core→node topology (inspection). */
    const Topology &topology() const { return topo; }

    /** Off-line profile collected when running with a Baseline policy. */
    const ServiceProfile &collectedProfile() const { return profile; }

  private:
    /** Snapshot copy backing clone(); see clone() for the contract. */
    System(const System &other);

    struct Thread
    {
        std::uint32_t id = 0;
        CoreId core = 0;
        std::unique_ptr<Workload> workload;
        ArchState arch;
        Rng rng;
        std::unique_ptr<RunLengthPredictor> predictor;
        std::unique_ptr<OffloadPolicy> policy;
        PredictivePolicy *predictive = nullptr; ///< non-owning view

        InstCount measuredRetired = 0;
        bool quotaReached = false;
        Cycle finishCycle = 0;

        /** In-flight off-loaded invocation. */
        OsInvocation pendingInv;
        OffloadDecision pendingDecision;
        Cycle offloadArrival = 0;
        /** Queue the in-flight off-load is bound for. */
        unsigned pendingQueue = 0;
        /** The off-load already overflowed once (spills don't chain). */
        bool spilled = false;
        /** OS core executing the in-flight off-load. */
        CoreId servingOsCore = 0;

        // --- Serving mode --------------------------------------------
        /** The request in service on this thread. */
        Request currentRequest;
        /** OS-invocation segments left before the request completes. */
        std::uint32_t segmentsLeft = 0;
        /** A request is in service. */
        bool servingRequest = false;
        /** No request in service and none queued; a dispatch wakes. */
        bool idle = false;
    };

    /**
     * Discriminators of the payload events System schedules. Using
     * plain-data payload events instead of capturing lambdas keeps the
     * EventQueue snapshot-copyable (see EventQueue's copy ctor); the
     * trampoline below decodes {kind, a, b} back into the same method
     * calls the old captures made.
     */
    enum class EventKind : std::uint32_t
    {
        ThreadStep,     ///< a = tid
        OsArrival,      ///< a = tid
        OsComplete,     ///< a = tid, b = executed length
        StealGo,        ///< a = stolen tid, b = thief queue
        ArrivalDeliver, ///< (no operands; delivers pendingArrival)
        ClientIssue,    ///< a = client
    };

    /** Static hook handed to EventQueue::setPayloadHandler. */
    static void eventTrampoline(void *ctx, const EventPayload &payload,
                                Cycle now);

    /** Decode and execute one payload event. */
    void dispatchEvent(const EventPayload &payload, Cycle now);

    /** Advance one thread by one workload token. */
    void threadStep(std::uint32_t tid);

    /** Process one OS invocation (decide, execute inline or off-load). */
    void handleInvocation(std::uint32_t tid, const OsInvocation &inv);

    /** The off-loaded request reached its queue (may spill once). */
    void osCoreArrival(std::uint32_t tid);

    /** OS core of queue `target` starts executing a request. */
    void startOsExecution(std::uint32_t tid, Cycle start,
                          unsigned target);

    /** An OS core finished a request. */
    void osCoreComplete(std::uint32_t tid, InstCount executed_length);

    /** Count one migration between two cores (NUMA accounting). */
    void countMigration(CoreId from, CoreId to);

    /** Queue `thief` went idle: steal from the deepest peer, if any. */
    void maybeSteal(unsigned thief, Cycle now);

    /** Charge retired instructions and drive phase/epoch machinery. */
    void retire(Thread &thread, InstCount count, bool privileged);

    /** True length of an invocation with interrupt extension applied. */
    InstCount extendedLength(const OsInvocation &inv);

    /** Switch from warmup to the measured region. */
    void enterMeasurement();

    /** Schedule the next threadStep. */
    void scheduleThread(std::uint32_t tid, Cycle when);

    /** Build one thread's policy objects. */
    void buildPolicy(Thread &thread);

    /** Gather results after the run. */
    SimResults collectResults() const;

    /** Seed the event queue with the run's initial events. */
    void beginRun();

    /**
     * Drive the event loop to the run's horizon; with
     * stop_at_measurement_start, return at the first event boundary
     * inside the measured region instead.
     */
    void runLoop(bool stop_at_measurement_start);

    /** Final metrics sample + result collection. */
    SimResults finishRun();

    // --- Serving mode (see workload/request_stream.hh) ---------------
    /** True when the run is driven by the request front-end. */
    bool servingMode() const { return requests != nullptr; }

    /** Open loop: commit and schedule the next fleet arrival. */
    void scheduleNextArrival();

    /** Closed loop: schedule a client's next issue. */
    void scheduleClientIssue(std::uint32_t client, Cycle when);

    /** Server thread an arriving request is dispatched to. */
    std::uint32_t dispatchTarget(const Request &request) const;

    /** Enqueue a request on a thread, waking it when idle. */
    void dispatchRequest(std::uint32_t tid, const Request &request);

    /** Pop the next queued request into service; false when empty. */
    bool beginRequest(std::uint32_t tid, Cycle now);

    /** The request in service on a thread finished its last segment. */
    void completeRequest(std::uint32_t tid, Cycle now);

    SystemConfig cfg;
    /**
     * Shared (immutable) between a system and its clones, so the
     * OsService pointers inside in-flight OsInvocations — and the
     * references held by workloads and the interrupt source — stay
     * valid across snapshots.
     */
    std::shared_ptr<const ServiceTable> services;
    AddressSpace space;
    OsPools pools;
    std::unique_ptr<MemorySystem> mem;
    EventQueue events;
    InterruptSource interrupts;
    ThresholdController controller;
    StaticThreshold staticThreshold;
    DynamicThreshold dynamicThreshold;
    Topology topo;
    OsQueueSet queues;

    std::vector<Core> cores;
    std::vector<Thread> threads;
    ServiceProfile profile; ///< filled continuously; used for SI profiling
    TraceSink *trace = nullptr; ///< optional; null = tracing off
    SpanRecorder *spans = nullptr; ///< optional; null = spans off

    // Metrics (optional; null = metrics off).
    MetricRegistry *metrics = nullptr;
    /** Cached registry sampling interval; 0 = periodic sampling off. */
    InstCount metricsInterval = 0;
    /** Next total-retired instant to sample at. */
    InstCount nextMetricsSample = 0;
    /** Registry-owned system-level counters (null when metrics off). */
    std::uint64_t *mRetiredUser = nullptr;
    std::uint64_t *mRetiredOs = nullptr;
    std::uint64_t *mInvocations = nullptr;
    std::uint64_t *mOffloads = nullptr;
    /** Registry-owned NUMA counters (null when metrics off). */
    std::uint64_t *mMigIntra = nullptr;
    std::uint64_t *mMigInter = nullptr;
    std::uint64_t *mSteals = nullptr;
    std::uint64_t *mSpills = nullptr;

    // Phase machinery.
    /** beginRun() has seeded the event queue. */
    bool started = false;
    bool measuring = false;
    InstCount warmupRetired = 0;
    InstCount warmupOsRetired = 0;
    InstCount measuredRetiredAll = 0;
    InstCount measuredOsRetired = 0;
    double warmupPrivFraction = 0.0;
    Cycle measureStart = 0;
    unsigned finishedThreads = 0;
    InstCount nextEpochBoundary = 0;
    InstCount windowStartInstr = 0;
    Cycle windowStartCycle = 0;
    std::vector<ThresholdSample> thresholdTrajectory;

    /** The configured dynamic-N feedback value for the ending epoch. */
    double epochFeedback();

    // Measured-region invocation stats.
    std::uint64_t invocationsMeasured = 0;
    std::uint64_t offloadedMeasured = 0;
    std::uint64_t migIntraMeasured = 0;
    std::uint64_t migInterMeasured = 0;
    RunningStat invocationLength;
    LogHistogram invocationLengthHist{32};
    InstCount osInstrAboveTail[4] = {0, 0, 0, 0};
    std::array<std::uint64_t, kNumServices> invocationsByService{};
    std::array<std::uint64_t, kNumServices> offloadsByService{};

    // Serving-mode state (null / unused in classic segment mode).
    std::unique_ptr<RequestStream> requests;
    /** Per-thread dispatch queues. */
    std::vector<std::deque<Request>> requestQueues;
    /** Open loop: the committed arrival the next event delivers. */
    Request pendingArrival;
    std::uint64_t requestsCompletedTotal = 0;
    std::uint64_t requestsCompletedMeasured = 0;
    std::uint64_t requestsOfferedMeasured = 0;
    LatencyHistogram requestLatency;
    RunningStat requestDispatchWait;
    bool servingDone = false;
    Cycle servingEndCycle = 0;
    // Registry-owned serving counters (null when metrics off).
    std::uint64_t *mRequestsOffered = nullptr;
    std::uint64_t *mRequestsCompleted = nullptr;
    LogHistogram *mRequestLatency = nullptr;

    /** Tail accounting for one completed invocation. */
    void recordInvocationLength(InstCount length);
};

} // namespace oscar

#endif // OSCAR_SYSTEM_SYSTEM_HH_
