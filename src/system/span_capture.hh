/**
 * @file
 * Serialization of SpanResults as an `oscar.spans.v1` JSONL artifact.
 *
 * Document layout (one JSON object per line):
 *
 *   meta   {"schema":"oscar.spans.v1","spans":N,
 *           "exemplar_capacity":M,"config":{...},
 *           "phases":["dispatch_wait",...]}
 *   phase  {"phase":"total|<name>","count":..,"sum":..,"mean":..,
 *           "min":..,"max":..,"p50":..,"p95":..,"p99":..,"p999":..}
 *   span   {"span":id,"tn":..,"t":..,"segs_n":..,"seed":..,
 *           "issued":..,"started":..,"completed":..,"lat":..,
 *           "segs":[{"ph":"...","start":..,"cy":..[,"sv":..][,"q":..]}]}
 *
 * The "total" phase line comes first and aggregates end-to-end
 * latencies; one line per schema phase follows in canonical order,
 * then the exemplar spans slowest-first. Per-phase sums add up to the
 * total sum exactly and every exemplar's segments tile its lifetime —
 * the invariants the validator in sim/span_reader.hh enforces. The
 * document contains no timestamps or hostnames, so bytes are
 * reproducible per config+seed and invariant under --jobs and replica
 * sharding.
 */

#ifndef OSCAR_SYSTEM_SPAN_CAPTURE_HH_
#define OSCAR_SYSTEM_SPAN_CAPTURE_HH_

#include <string>

#include "sim/span.hh"
#include "system/system_config.hh"

namespace oscar
{

/** Meta line: schema, span count, config, phase catalogue. */
std::string spansMetaJson(const SpanResults &results,
                          const SystemConfig &config);

/** One aggregate phase line (name "total" for end-to-end). */
std::string spanPhaseJson(const char *name,
                          const LatencyHistogram &histogram);

/** One exemplar span line. */
std::string spanExemplarJson(const RequestSpan &span);

/** The complete document: meta + phases + exemplars. */
std::string spansDocument(const SpanResults &results,
                          const SystemConfig &config);

/**
 * Write the document to `path`.
 *
 * @return true when the file was written; false (with a warning) when
 *         it could not be opened.
 */
bool writeSpansFile(const SpanResults &results, const SystemConfig &config,
                    const std::string &path);

} // namespace oscar

#endif // OSCAR_SYSTEM_SPAN_CAPTURE_HH_
