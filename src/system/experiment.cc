/**
 * @file
 * Implementation of the experiment helpers.
 */

#include "system/experiment.hh"

#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "sim/logging.hh"

namespace oscar
{

SystemConfig
ExperimentRunner::baselineConfig(WorkloadKind workload, std::uint64_t seed)
{
    SystemConfig config;
    config.workload = workload;
    config.userCores = 1;
    config.offloadEnabled = false;
    config.policy = PolicyKind::Baseline;
    config.seed = seed;
    return config;
}

SystemConfig
ExperimentRunner::hardwareConfig(WorkloadKind workload, InstCount static_n,
                                 Cycle migration_one_way,
                                 std::uint64_t seed)
{
    SystemConfig config = baselineConfig(workload, seed);
    config.offloadEnabled = true;
    config.policy = PolicyKind::HardwarePredictor;
    config.staticThreshold = static_n;
    config.migrationOneWayCycles = migration_one_way;
    return config;
}

SystemConfig
ExperimentRunner::hardwareDynamicConfig(WorkloadKind workload,
                                        Cycle migration_one_way,
                                        std::uint64_t seed)
{
    SystemConfig config =
        hardwareConfig(workload, 1000, migration_one_way, seed);
    config.dynamicThreshold = true;
    return config;
}

SystemConfig
ExperimentRunner::dynamicInstrConfig(WorkloadKind workload,
                                     Cycle migration_one_way,
                                     Cycle di_cost, std::uint64_t seed)
{
    SystemConfig config =
        hardwareConfig(workload, 1000, migration_one_way, seed);
    config.policy = PolicyKind::DynamicInstrumentation;
    config.diDecisionCost = di_cost;
    config.dynamicThreshold = true;
    return config;
}

SystemConfig
ExperimentRunner::staticInstrConfig(
    WorkloadKind workload, Cycle migration_one_way,
    std::shared_ptr<const ServiceProfile> profile, std::uint64_t seed)
{
    SystemConfig config = baselineConfig(workload, seed);
    config.offloadEnabled = true;
    config.policy = PolicyKind::StaticInstrumentation;
    config.migrationOneWayCycles = migration_one_way;
    config.siProfile = std::move(profile);
    return config;
}

std::shared_ptr<const ServiceProfile>
ExperimentRunner::profileServices(WorkloadKind workload,
                                  std::uint64_t seed)
{
    SystemConfig config = baselineConfig(workload, seed);
    // A short pass suffices: only per-service means are consumed.
    config.warmupInstructions = 100'000;
    config.measureInstructions = 600'000;
    System system(config);
    (void)system.run();
    return std::make_shared<ServiceProfile>(system.collectedProfile());
}

SimResults
ExperimentRunner::run(const SystemConfig &config)
{
    return run(config, nullptr);
}

SimResults
ExperimentRunner::run(const SystemConfig &config, TraceSink *trace)
{
    return run(config, trace, nullptr);
}

SimResults
ExperimentRunner::run(const SystemConfig &config, TraceSink *trace,
                      MetricRegistry *metrics)
{
    return run(config, trace, metrics, nullptr);
}

SimResults
ExperimentRunner::run(const SystemConfig &config, TraceSink *trace,
                      MetricRegistry *metrics, SpanRecorder *spans)
{
    System system(config);
    if (trace != nullptr)
        system.setTraceSink(trace);
    if (metrics != nullptr)
        system.setMetricRegistry(metrics);
    if (spans != nullptr)
        system.setSpanRecorder(spans);
    return system.run();
}

namespace
{

/**
 * The uni-processor baseline derived from a full variant config: a
 * default-constructed SystemConfig is already the Baseline uni-core
 * machine, so only the environment knobs carry over. Everything
 * off-loading-specific (policy, predictor, thresholds, decision
 * costs, SI profile, topology, migration latency) stays at its
 * default — none of it is consulted when off-loading is disabled,
 * and canonicalizing it keeps the cache key from fragmenting.
 */
SystemConfig
baselineVariant(const SystemConfig &config)
{
    SystemConfig base;
    base.workload = config.workload;
    base.geometry = config.geometry;
    base.timings = config.timings;
    base.interrupts = config.interrupts;
    base.osCouplingScale = config.osCouplingScale;
    base.serving = config.serving;
    base.seed = config.seed;
    base.warmupInstructions = config.warmupInstructions;
    base.measureInstructions = config.measureInstructions;
    return base;
}

void
appendKey(std::string &key, const char *name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.17g", name, value);
    key += buf;
}

void
appendKey(std::string &key, const char *name, std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%llu", name,
                  static_cast<unsigned long long>(value));
    key += buf;
}

void
appendGeometryKey(std::string &key, const char *name,
                  const CacheGeometry &g)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%llu/%u/%u/%llu", name,
                  static_cast<unsigned long long>(g.sizeBytes), g.assoc,
                  g.lineBytes,
                  static_cast<unsigned long long>(g.hitLatency));
    key += buf;
}

} // namespace

void
appendConfigEnvironmentKey(std::string &key, const SystemConfig &c)
{
    appendKey(key, "w", std::uint64_t(static_cast<int>(c.workload)));
    appendKey(key, "seed", c.seed);
    appendKey(key, "warm", c.warmupInstructions);
    appendKey(key, "couple", c.osCouplingScale);
    appendKey(key, "irq", c.interrupts.meanInterarrivalCycles);
    appendGeometryKey(key, "l1i", c.geometry.l1i);
    appendGeometryKey(key, "l1d", c.geometry.l1d);
    appendGeometryKey(key, "l2", c.geometry.l2);
    appendKey(key, "t.l1", c.timings.l1Hit);
    appendKey(key, "t.l2", c.timings.l2Hit);
    appendKey(key, "t.dir", c.timings.directoryLookup);
    appendKey(key, "t.c2c", c.timings.cacheToCache);
    appendKey(key, "t.inv", c.timings.invalidateAck);
    appendKey(key, "t.mem", c.timings.memory);
    appendKey(key, "t.hop", c.timings.interconnectHop);
    if (c.serving != nullptr) {
        const ServingConfig &s = *c.serving;
        appendKey(key, "s.arr",
                  std::uint64_t(static_cast<int>(s.arrival)));
        appendKey(key, "s.disp",
                  std::uint64_t(static_cast<int>(s.dispatch)));
        appendKey(key, "s.iat", s.meanInterarrivalCycles);
        appendKey(key, "s.diA", s.diurnalAmplitude);
        appendKey(key, "s.diP", s.diurnalPeriodCycles);
        appendKey(key, "s.bp", s.burstProbability);
        appendKey(key, "s.bm", s.burstRateMultiplier);
        appendKey(key, "s.br", s.burstMeanRequests);
        appendKey(key, "s.cpc", std::uint64_t(s.clientsPerCore));
        appendKey(key, "s.think", s.meanThinkCycles);
        appendKey(key, "s.ten", std::uint64_t(s.tenants));
        appendKey(key, "s.skew", s.tenantSkew);
        appendKey(key, "s.seg", s.meanSegments);
        appendKey(key, "s.sigma", s.segmentsSigma);
        appendKey(key, "s.warm", s.warmupRequests);
    }
}

namespace
{

std::string
baselineCacheKey(const SystemConfig &baseline)
{
    std::string key = "baseline";
    appendConfigEnvironmentKey(key, baseline);
    // The baseline's measured horizon is part of its identity (the
    // warm-snapshot key, by contrast, excludes it).
    appendKey(key, "meas", baseline.measureInstructions);
    if (baseline.serving != nullptr)
        appendKey(key, "s.meas", baseline.serving->measureRequests);
    return key;
}

// The cache stores shared_futures so concurrent sweep points that
// share a baseline compute it exactly once: the first requester
// inserts the future and runs the simulation, later requesters block
// on it. Guarded by a mutex; the simulation itself runs unlocked.
std::mutex baselineMutex;
std::map<std::string, std::shared_future<SimResults>> baselineCache;

} // namespace

SimResults
ExperimentRunner::baselineResults(const SystemConfig &config)
{
    const SystemConfig baseline = baselineVariant(config);
    const std::string key = baselineCacheKey(baseline);

    std::promise<SimResults> promise;
    std::shared_future<SimResults> future;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(baselineMutex);
        auto it = baselineCache.find(key);
        if (it != baselineCache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            baselineCache.emplace(key, future);
            compute = true;
        }
    }

    if (compute) {
        try {
            promise.set_value(run(baseline));
        } catch (...) {
            // Propagate to every waiter, then forget the entry so a
            // later call can retry instead of replaying the failure.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(baselineMutex);
            baselineCache.erase(key);
        }
    }
    return future.get();
}

SimResults
ExperimentRunner::baselineResults(WorkloadKind workload,
                                  std::uint64_t seed,
                                  InstCount measure_instructions,
                                  InstCount warmup_instructions)
{
    SystemConfig config = baselineConfig(workload, seed);
    config.measureInstructions = measure_instructions;
    config.warmupInstructions = warmup_instructions;
    return baselineResults(config);
}

void
ExperimentRunner::clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(baselineMutex);
    baselineCache.clear();
}

double
ExperimentRunner::normalizedThroughput(const SystemConfig &config)
{
    const SimResults base = baselineResults(config);
    const SimResults variant = run(config);
    oscar_assert(base.throughput > 0.0);
    return variant.throughput / base.throughput;
}

TextTable::TextTable(std::vector<std::string> headers)
    : columnHeaders(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != columnHeaders.size())
        oscar_panic("table row has %zu cells, expected %zu",
                    cells.size(), columnHeaders.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(columnHeaders.size());
    for (std::size_t c = 0; c < columnHeaders.size(); ++c)
        widths[c] = columnHeaders[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += cells[c];
            line.append(widths[c] - cells[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += '\n';
        return line;
    };

    std::string out = render_row(columnHeaders);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule.append(widths[c] + (c + 1 < widths.size() ? 2 : 0), '-');
    out += rule + '\n';
    for (const auto &row : rows)
        out += render_row(row);
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace oscar
