/**
 * @file
 * Parallel execution of configuration sweeps.
 *
 * Every figure and table of the paper is produced by sweeping dozens
 * of independent (workload, policy, N, latency, seed) points through
 * the simulator. Each point is self-contained and deterministic per
 * seed, so the sweep is embarrassingly parallel: ParallelSweepRunner
 * executes a vector of points on a fixed-size thread pool with
 *
 *  - deterministic result ordering (results land at the index of
 *    their point, regardless of which worker ran them, and a point's
 *    simulation output is byte-identical for any job count);
 *  - per-point wall-clock timing;
 *  - failure isolation: an oscar_fatal or exception in one point is
 *    captured into that point's result and the sweep continues.
 *
 * SweepReport serializes the per-point results to JSON so the bench
 * binaries emit machine-readable artifacts next to their plain-text
 * tables.
 */

#ifndef OSCAR_SYSTEM_SWEEP_HH_
#define OSCAR_SYSTEM_SWEEP_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "system/experiment.hh"
#include "system/system.hh"

namespace oscar
{

/** One configuration point of a sweep. */
struct SweepPoint
{
    /** Human-readable identity, e.g. "apache/N=100/lat=1000". */
    std::string label;
    /** Full system configuration to simulate. */
    SystemConfig config;
    /**
     * True to also obtain the uni-processor baseline (cached across
     * points) and report variant/baseline normalized throughput.
     */
    bool normalize = true;
    /**
     * When non-empty, the point streams an `oscar.trace.v1` JSONL
     * trace of its run to this file. Each point owns its file, so the
     * bytes written are independent of the sweep's job count.
     */
    std::string tracePath;
    /**
     * When non-empty, the point samples a MetricRegistry during its
     * run and writes the `oscar.metrics.v1` document to this file.
     * Like traces, each point owns its file, so the bytes written are
     * independent of the sweep's job count.
     */
    std::string metricsPath;
    /**
     * Sampling period (retired instructions) for the point's metric
     * registry; 0 keeps only the measurement-start and end-of-run
     * samples. Ignored unless metricsPath is set.
     */
    std::uint64_t metricsSampleEvery = 1'000'000;
    /**
     * True to attach a SpanRecorder (see sim/span.hh): the point's
     * results carry per-phase latency histograms and tail exemplars
     * in SimResults::spans, and the report gains a "spans" block.
     * Span points always take the fresh path (no warm-snapshot fork),
     * so phase sums cross-check against requestLatency exactly.
     * Serving configurations only.
     */
    bool recordSpans = false;
    /**
     * When non-empty, the point writes its `oscar.spans.v1` document
     * to this file (implies recordSpans). Each point owns its file,
     * so the bytes written are independent of the sweep's job count.
     */
    std::string spansPath;
    /** Tail-exemplar reservoir capacity for this point's recorder. */
    std::size_t spanExemplars = 8;
    /**
     * Seed replicas of this point. When non-empty, the runner executes
     * one sub-run per listed seed (the point's configuration with
     * `config.seed` replaced) and folds the sub-runs — in listed
     * order, whatever the job count or claim order — into a single
     * merged SweepPointResult via mergeReplicaResults(). Replica
     * sub-runs shard across the worker pool like independent points,
     * so one sharded point saturates the pool instead of running its
     * replicas serially on one worker. `config.seed` itself is never
     * run; leave replicaSeeds empty for the classic one-run point.
     * Trace and metrics paths gain a per-replica ".r<k>" suffix (each
     * replica samples its own registry, so merged metrics are never
     * double-counted).
     */
    std::vector<std::uint64_t> replicaSeeds;
};

/** Outcome of one sweep point. */
struct SweepPointResult
{
    /** Position of the point in the input vector. */
    std::size_t index = 0;
    std::string label;
    /** Configuration snapshot the point ran with. */
    SystemConfig config;

    /** False when the point failed; error holds the reason. */
    bool ok = false;
    std::string error;

    /** Metrics file the point wrote; empty when metrics were off. */
    std::string metricsPath;

    /** Spans file the point wrote; empty when spans were off. */
    std::string spansPath;

    /**
     * Seeds of the replicas folded into this result; empty for a
     * classic one-run point. Mirrors SweepPoint::replicaSeeds.
     */
    std::vector<std::uint64_t> replicaSeeds;

    /** Simulation output (valid only when ok). For a sharded point
     *  this is the mergeReplicaResults() fold of the replicas. */
    SimResults results;
    /** Variant/baseline throughput; 0 when not normalized. */
    double normalized = 0.0;

    /** Host wall-clock the point took, in milliseconds. */
    double wallMs = 0.0;
};

/**
 * Distribution-preserving aggregate over sweep points (typically the
 * seed replicas of one configuration). Counts pool via
 * RatioStat::merge, invocation lengths via LogHistogram::merge, and
 * request latencies via LatencyHistogram::merge — so a percentile of
 * the aggregate equals the percentile of a single run that recorded
 * every sample, not an average of per-point percentiles (which is
 * not a percentile of anything).
 */
struct SweepAggregate
{
    /** Successful points folded in. */
    std::uint64_t points = 0;
    /** Instruction throughput across points. */
    RunningStat throughput;
    /** Normalized throughput across points (normalized points only). */
    RunningStat normalized;
    /** Pooled off-loaded / total invocation counts. */
    RatioStat offload;
    /** Merged invocation-length distribution. */
    LogHistogram invocationLengths{32};
    /** Merged end-to-end request-latency distribution (serving). */
    LatencyHistogram requestLatency;
    /** Request throughput across points (serving). */
    RunningStat requestThroughput;
    /**
     * Pooled OS-core queue delay over every queue of every point.
     * Earlier revisions read only the point-level meanQueueDelay
     * scalar, which silently collapses a K-queue point to one value;
     * folding each OsQueueResult keeps replica pooling exact for any
     * queue count.
     */
    RunningStat queueDelay;
    /** Merged per-queue admission-wait distribution (same samples). */
    LatencyHistogram queueWait;
    /** Work-stealing balance actions summed across points. */
    std::uint64_t steals = 0;
    std::uint64_t spills = 0;

    /** Spans folded in (span-recording points only). */
    std::uint64_t spans = 0;
    /** Merged per-phase span histograms (see sim/span.hh). */
    std::array<LatencyHistogram, kNumSpanPhases> spanPhase;

    /** Fold one point in; failed points are skipped. */
    void add(const SweepPointResult &result);
};

/**
 * Fold the SimResults of a point's seed replicas (in replica order)
 * into one distribution-preserving result.
 *
 * Mergeable machinery pools exactly: offloadRatio via
 * RatioStat::merge, invocationLengths via LogHistogram::merge,
 * requestLatency and per-queue waits via LatencyHistogram::merge,
 * predictor accuracy via PredictorStats::merge, and per-queue delay /
 * dispatch-wait moments via RunningStat::merge — so a percentile of
 * the merged result is the percentile of the union sample population.
 * Counters sum; per-queue counters sum by queue index (replicas share
 * a topology). Derived rates are recomputed from pooled numerators
 * where the counts exist (throughput = pooled retired / pooled
 * makespan, offloadFraction from the pooled RatioStat, mean
 * invocation length weighted by invocation counts) and otherwise as
 * weighted means over the natural weight (L2 hit rates and priv
 * fraction by retired instructions, utilizations by makespan).
 * Replica-0 wins for fields with no meaningful pooled form: the
 * threshold trajectory and final threshold (per-replica trajectories
 * diverge; switches still sum).
 */
SimResults mergeReplicaResults(const std::vector<SimResults> &replicas);

/**
 * Per-replica artifact file name: ".r<k>" spliced in before a
 * trailing ".jsonl" ("fig.2.jsonl" -> replica 1 -> "fig.2.r1.jsonl"),
 * or appended as ".r<k>.jsonl" otherwise (mirroring sweepTracePath).
 */
std::string sweepReplicaPath(const std::string &base,
                             std::size_t replica);

/** Sweep execution knobs. */
struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency, 1 runs inline. */
    unsigned jobs = 1;

    /**
     * Fork eligible points from a shared warm snapshot (the default).
     *
     * Points that agree on their warm-up environment — workload, seed,
     * core counts, topology shape, geometry, timings, interrupt rate,
     * coupling scale, serving front-end, warmup length — form a group.
     * The group's prefix is simulated once under a canonical Baseline
     * warmer (no off-loading, so the warm cache/predictor state is
     * policy-neutral), snapshotted at measurement start, and every
     * point clones the snapshot, swaps in its own policy/threshold/
     * predictor configuration, and resumes through the measured region
     * only.
     *
     * This is a deliberate methodology change, not an optimization
     * that preserves bytes: a forked point's warm-up ran under the
     * Baseline policy, so its results may differ (slightly) from a
     * fresh end-to-end run whose warm-up already off-loads. Results
     * are still fully deterministic — independent of job count and of
     * which point warmed the group. Points that stream traces or
     * metrics always take the fresh path so golden artifacts stay
     * byte-identical; set fork=false (or pass --no-fork to a bench)
     * to force the fresh path for every point.
     */
    bool fork = true;
};

/**
 * Fixed-size thread pool executing sweep points concurrently.
 */
class ParallelSweepRunner
{
  public:
    explicit ParallelSweepRunner(SweepOptions options = {});

    /**
     * Run every point and return results in point order.
     *
     * Points are claimed from a shared counter, so scheduling is
     * dynamic, but the output vector is indexed by point — the result
     * layout is independent of the job count and of worker timing.
     */
    std::vector<SweepPointResult>
    run(const std::vector<SweepPoint> &points) const;

    /**
     * Execute one point with timing and failure capture, on the
     * fresh (non-forked) path: this is the golden-trace-stable
     * entry point.
     */
    static SweepPointResult runPoint(const SweepPoint &point,
                                     std::size_t index);

    /**
     * Execute one point, forking from the group's warm snapshot when
     * `allow_fork` is set and the point is eligible (no trace or
     * metrics streaming, non-empty warm-up). See SweepOptions::fork.
     */
    static SweepPointResult runPoint(const SweepPoint &point,
                                     std::size_t index, bool allow_fork);

    /**
     * Drop every cached warm snapshot (tests and A/B timing). Do not
     * call concurrently with a running sweep.
     */
    static void clearWarmSnapshotCache();

    /** The worker count a run() call will actually use. */
    unsigned effectiveJobs(std::size_t point_count) const;

  private:
    SweepOptions opts;
};

/**
 * The canonical warmer configuration of a point's fork group: the
 * point's configuration with every off-loading decision knob —
 * policy, predictor organization, thresholds, decision costs, SI
 * profile, dynamic-N controller — reset to the Baseline defaults.
 * Every point of a group maps to the same warmer, so the shared
 * warm-up prefix is well defined and policy-neutral.
 */
SystemConfig sweepWarmerConfig(const SystemConfig &config);

/**
 * Cache key of a point's fork group: a textual encoding of every
 * field that shapes the canonical warmer's prefix (environment fields
 * via appendConfigEnvironmentKey, plus core counts and topology
 * shape). Policy/threshold/predictor fields and the measured horizon
 * are deliberately absent — points differing only in those share a
 * snapshot.
 */
std::string sweepWarmupKey(const SystemConfig &config);

/**
 * Machine-readable sweep artifact.
 *
 * Schema ("oscar.sweep.v1"):
 * {
 *   "schema": "oscar.sweep.v1",
 *   "title": "...",
 *   "jobs": 4,
 *   "points": [
 *     {
 *       "index": 0, "label": "...", "ok": true, "error": "",
 *       "metrics_path": "", "wall_ms": 12.5,
 *       "config": {workload, policy, predictor, user_cores,
 *                  dynamic_threshold, static_threshold,
 *                  migration_one_way_cycles, seed,
 *                  warmup_instructions, measure_instructions,
 *                  topology?: {os_cores, numa_nodes, placement,
 *                              dispatch, intra/inter_node_hop_cycles,
 *                              spill_depth}},
 *       "results": {throughput, normalized_throughput, priv_fraction,
 *                   user/os/combined_l2_hit_rate, invocations,
 *                   offloaded, offload_fraction,
 *                   mean_invocation_length, os_core_utilization,
 *                   mean/max_queue_delay, decision/migration/
 *                   queue_wait_cycles, c2c_transfers, invalidations,
 *                   predictor {samples, exact_rate,
 *                              within_tolerance_rate, miss_rate,
 *                              global_fallback_rate},
 *                   numa?: {migrations_intra, migrations_inter,
 *                           steals, spills,
 *                           queues: [{queue, core, node, admitted,
 *                                     steals/spills in/out,
 *                                     utilization, wait_*}, ...]},
 *                   final_threshold, threshold_switches,
 *                   threshold_trajectory: [{instruction, n}, ...]}
 *
 * The topology and numa blocks appear only for points whose topology
 * departs from the paper's one-OS-core default, so every pre-existing
 * artifact remains byte-identical.
 *     }, ...
 *   ]
 * }
 */
class SweepReport
{
  public:
    /**
     * @param title Artifact name, e.g. "fig4_threshold_sweep".
     * @param jobs Worker count the sweep ran with (metadata).
     */
    SweepReport(std::string title, unsigned jobs);

    /** Append one point's outcome. */
    void add(const SweepPointResult &result);

    /** Append every result of a finished sweep. */
    void addAll(const std::vector<SweepPointResult> &results);

    /** Number of points recorded. */
    std::size_t size() const { return points.size(); }

    /** The complete JSON document. */
    std::string toJson() const;

    /**
     * Write the JSON document to a file.
     *
     * @return true on success; warns and returns false on I/O error.
     */
    bool writeTo(const std::string &path) const;

  private:
    std::string reportTitle;
    unsigned reportJobs;
    std::vector<SweepPointResult> points;
};

/**
 * Serialize one point's simulation results (excluding wall-clock, the
 * only nondeterministic field) — the byte-comparison hook used by the
 * determinism tests.
 */
std::string sweepPointResultsJson(const SweepPointResult &result);

/**
 * Command-line options shared by the sweep-driven bench binaries.
 *
 * Recognized flags:
 *   --jobs N          worker threads (default 1; 0 = hardware
 *                     concurrency)
 *   --json PATH       write the sweep report to PATH
 *   --no-json         suppress the report file
 *   --trace PATH      capture per-point traces as PATH-derived files
 *   --metrics PATH    capture per-point oscar.metrics.v1 time series
 *                     as PATH-derived files
 *   --metrics-every N metric sampling period in retired instructions
 *                     (default 1000000; 0 = endpoints only)
 *   --spans PATH      capture per-point oscar.spans.v1 documents as
 *                     PATH-derived files (serving benches)
 *   --help            print usage and exit
 */
struct BenchOptions
{
    unsigned jobs = 1;
    /** Warm-snapshot forking (see SweepOptions::fork); --no-fork off. */
    bool fork = true;
    /** Report destination; empty disables the artifact. */
    std::string jsonPath;
    /** Per-point trace base path; empty disables tracing. */
    std::string tracePath;
    /** Per-point metrics base path; empty disables metrics capture. */
    std::string metricsPath;
    /** Metric sampling period in retired instructions. */
    std::uint64_t metricsEvery = 1'000'000;
    /** Per-point spans base path; empty disables span export. */
    std::string spansPath;

    /**
     * Parse argv; fatal on malformed flags.
     *
     * @param default_json Report path used when --json is absent.
     */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &default_json);
};

/**
 * Per-point trace file name derived from a base path: the point index
 * is spliced in before a trailing ".jsonl" ("fig4.jsonl" -> point 2 ->
 * "fig4.2.jsonl"), or appended as ".<index>.jsonl" otherwise.
 */
std::string sweepTracePath(const std::string &base, std::size_t index);

/**
 * Set every point's tracePath from a base path (see sweepTracePath);
 * an empty base clears them all.
 */
void applySweepTracePaths(std::vector<SweepPoint> &points,
                          const std::string &base);

/**
 * Set every point's metricsPath from a base path (same derivation as
 * sweepTracePath) and its sampling period; an empty base clears the
 * paths and leaves the periods untouched.
 */
void applySweepMetricsPaths(std::vector<SweepPoint> &points,
                            const std::string &base,
                            std::uint64_t sample_every = 1'000'000);

/**
 * Set every point's spansPath from a base path (same derivation as
 * sweepTracePath); an empty base clears the paths but leaves each
 * point's recordSpans flag untouched.
 */
void applySweepSpanPaths(std::vector<SweepPoint> &points,
                         const std::string &base);

} // namespace oscar

#endif // OSCAR_SYSTEM_SWEEP_HH_
