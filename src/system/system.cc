/**
 * @file
 * Implementation of the simulated system.
 */

#include "system/system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"

namespace oscar
{

namespace
{

/** Apply feedback-dependent defaults to the controller config. */
ThresholdConfig
controllerConfig(const SystemConfig &config)
{
    ThresholdConfig tc = config.thresholdConfig;
    if (config.thresholdFeedback ==
        SystemConfig::ThresholdFeedback::WindowIpc) {
        tc.relativeImprovement = true;
    }
    return tc;
}

} // namespace

System::System(const SystemConfig &config)
    : cfg(config), services(std::make_shared<const ServiceTable>()),
      interrupts(cfg.interrupts, *services,
                 Rng(cfg.seed ^ 0xA5A5A5A5ULL)),
      controller(controllerConfig(config)),
      staticThreshold(cfg.staticThreshold),
      dynamicThreshold(controller)
{
    cfg.validate();
    events.setPayloadHandler(&System::eventTrampoline, this);

    // Offload-disabled systems still get a (trivial) topology so node
    // queries are always answerable; the configured one only matters
    // when OS cores exist.
    topo = Topology(cfg.userCores,
                    cfg.offloadEnabled ? cfg.topology : TopologyConfig{},
                    cfg.migrationOneWayCycles);
    queues.build(topo);

    WorkloadSpec spec = makeWorkloadSpec(cfg.workload);
    spec.osCouplingScale = cfg.osCouplingScale;
    pools = OsPools::build(space, *services, spec);

    mem = std::make_unique<MemorySystem>(cfg.totalCores(), cfg.geometry,
                                         cfg.timings);

    Rng root(cfg.seed);
    cores.reserve(cfg.totalCores());
    for (unsigned c = 0; c < cfg.userCores; ++c)
        cores.emplace_back(c, CoreRole::User);
    if (cfg.offloadEnabled) {
        for (unsigned k = 0; k < topo.osCoreCount(); ++k)
            cores.emplace_back(topo.osCoreId(k), CoreRole::Os);
    }

    threads.resize(cfg.userCores);
    for (unsigned t = 0; t < cfg.userCores; ++t) {
        Thread &thread = threads[t];
        thread.id = t;
        thread.core = t;
        thread.rng = root.fork();
        thread.workload = std::make_unique<Workload>(
            spec, *services, space, pools, cfg.geometry.l2.lineBytes);
        buildPolicy(thread);
    }
}

System::System(const System &other)
    : cfg(other.cfg), services(other.services), space(other.space),
      mem(std::make_unique<MemorySystem>(*other.mem)),
      events(other.events), interrupts(other.interrupts),
      controller(other.controller),
      staticThreshold(other.staticThreshold),
      dynamicThreshold(controller), // rebound to OUR controller
      topo(other.topo), cores(other.cores), profile(other.profile)
{
    // The copied EventQueue carries no handler; install ours.
    events.setPayloadHandler(&System::eventTrampoline, this);
    // The copied controller may carry the original's trace sink.
    controller.setTraceSink(nullptr);
    queues.cloneFrom(other.queues, topo);

    // Rebind every region pointer into our deep-copied address space.
    const RegionRemap remap(other.space, space);
    pools = other.pools.remapped(remap);

    threads.resize(other.threads.size());
    for (std::size_t i = 0; i < threads.size(); ++i) {
        Thread &thread = threads[i];
        const Thread &theirs = other.threads[i];
        thread.id = theirs.id;
        thread.core = theirs.core;
        thread.workload = theirs.workload->clone(*services, remap);
        thread.arch = theirs.arch;
        thread.rng = theirs.rng;
        if (theirs.predictor != nullptr)
            thread.predictor = theirs.predictor->clone();
        buildPolicy(thread);
        if (thread.predictive != nullptr &&
            theirs.predictive != nullptr) {
            thread.predictive->stats() = theirs.predictive->stats();
        }
        thread.measuredRetired = theirs.measuredRetired;
        thread.quotaReached = theirs.quotaReached;
        thread.finishCycle = theirs.finishCycle;
        // pendingInv's service pointer targets the shared table, so
        // it survives the copy verbatim.
        thread.pendingInv = theirs.pendingInv;
        thread.pendingDecision = theirs.pendingDecision;
        thread.offloadArrival = theirs.offloadArrival;
        thread.pendingQueue = theirs.pendingQueue;
        thread.spilled = theirs.spilled;
        thread.servingOsCore = theirs.servingOsCore;
        thread.currentRequest = theirs.currentRequest;
        thread.segmentsLeft = theirs.segmentsLeft;
        thread.servingRequest = theirs.servingRequest;
        thread.idle = theirs.idle;
    }

    // Phase machinery and measured-region statistics.
    started = other.started;
    measuring = other.measuring;
    warmupRetired = other.warmupRetired;
    warmupOsRetired = other.warmupOsRetired;
    measuredRetiredAll = other.measuredRetiredAll;
    measuredOsRetired = other.measuredOsRetired;
    warmupPrivFraction = other.warmupPrivFraction;
    measureStart = other.measureStart;
    finishedThreads = other.finishedThreads;
    nextEpochBoundary = other.nextEpochBoundary;
    windowStartInstr = other.windowStartInstr;
    windowStartCycle = other.windowStartCycle;
    thresholdTrajectory = other.thresholdTrajectory;
    invocationsMeasured = other.invocationsMeasured;
    offloadedMeasured = other.offloadedMeasured;
    migIntraMeasured = other.migIntraMeasured;
    migInterMeasured = other.migInterMeasured;
    invocationLength = other.invocationLength;
    invocationLengthHist = other.invocationLengthHist;
    for (std::size_t i = 0; i < 4; ++i)
        osInstrAboveTail[i] = other.osInstrAboveTail[i];
    invocationsByService = other.invocationsByService;
    offloadsByService = other.offloadsByService;

    // Serving-mode state.
    if (other.requests != nullptr)
        requests = std::make_unique<RequestStream>(*other.requests);
    requestQueues = other.requestQueues;
    pendingArrival = other.pendingArrival;
    requestsCompletedTotal = other.requestsCompletedTotal;
    requestsCompletedMeasured = other.requestsCompletedMeasured;
    requestsOfferedMeasured = other.requestsOfferedMeasured;
    requestLatency = other.requestLatency;
    requestDispatchWait = other.requestDispatchWait;
    servingDone = other.servingDone;
    servingEndCycle = other.servingEndCycle;

    // trace/metrics/m* pointers keep their null defaults: the clone
    // starts uninstrumented by contract.
}

std::unique_ptr<System>
System::clone() const
{
    return std::unique_ptr<System>(new System(*this));
}

void
System::reconfigureForMeasurement(const SystemConfig &config)
{
    oscar_assert(started && measuring &&
                 "reconfigure requires a system stopped at "
                 "measurement start");
    // The warm prefix is only shareable across configurations that
    // agree on everything that shaped it; spot-check the load-bearing
    // fields. Policy/threshold/predictor/horizon fields may differ.
    oscar_assert(config.workload == cfg.workload);
    oscar_assert(config.seed == cfg.seed);
    oscar_assert(config.userCores == cfg.userCores);
    oscar_assert(config.offloadEnabled == cfg.offloadEnabled);
    oscar_assert(config.warmupInstructions == cfg.warmupInstructions);
    oscar_assert(config.osCouplingScale == cfg.osCouplingScale);
    oscar_assert((config.serving == nullptr) == (cfg.serving == nullptr));
    oscar_assert(config.serving == nullptr ||
                 config.serving->warmupRequests ==
                     cfg.serving->warmupRequests);
    oscar_assert(!cfg.offloadEnabled ||
                 (config.topology.osCores == cfg.topology.osCores &&
                  config.topology.numaNodes == cfg.topology.numaNodes &&
                  config.topology.placement == cfg.topology.placement &&
                  config.topology.dispatch == cfg.topology.dispatch));

    cfg = config;
    cfg.validate();
    // The topology bakes the one-way migration latency into its
    // distance maps, so rebuild it in place: same shape (asserted
    // above), possibly a different latency. Reassignment keeps the
    // object's address, so the queue set's topology pointer stays
    // valid.
    topo = Topology(cfg.userCores,
                    cfg.offloadEnabled ? cfg.topology : TopologyConfig{},
                    cfg.migrationOneWayCycles);
    staticThreshold = StaticThreshold(cfg.staticThreshold);
    controller = ThresholdController(controllerConfig(cfg));
    for (Thread &thread : threads) {
        thread.predictive = nullptr;
        thread.predictor.reset();
        thread.policy.reset();
        buildPolicy(thread);
    }

    // Re-enter the measured region at the current cycle: same resets
    // enterMeasurement() performs, so the forked run's measured
    // region starts clean under the new policy.
    measureStart = events.now();
    mem->resetStats();
    for (Core &core : cores)
        core.resetStats();
    queues.resetStats();
    measuredRetiredAll = 0;
    measuredOsRetired = 0;
    finishedThreads = 0;
    for (Thread &thread : threads) {
        thread.measuredRetired = 0;
        thread.quotaReached = false;
        thread.finishCycle = 0;
    }
    invocationsMeasured = 0;
    offloadedMeasured = 0;
    migIntraMeasured = 0;
    migInterMeasured = 0;
    invocationLength.reset();
    invocationLengthHist.reset();
    for (InstCount &tail : osInstrAboveTail)
        tail = 0;
    invocationsByService.fill(0);
    offloadsByService.fill(0);
    thresholdTrajectory.clear();
    if (cfg.dynamicThreshold) {
        controller.begin(warmupPrivFraction);
        thresholdTrajectory.push_back(
            {measuredRetiredAll, controller.currentThreshold()});
        nextEpochBoundary = measuredRetiredAll + controller.epochLength();
        mem->resetWindow();
        windowStartInstr = measuredRetiredAll;
        windowStartCycle = events.now();
    }
    requestsCompletedMeasured = 0;
    requestsOfferedMeasured = 0;
    requestLatency = LatencyHistogram{};
    requestDispatchWait.reset();
    if (spans != nullptr)
        spans->reset();
}

System::~System() = default;

void
System::setTraceSink(TraceSink *sink)
{
    trace = sink;
    if (trace != nullptr)
        trace->setClock(&events);
    queues.setTraceSink(sink);
    controller.setTraceSink(sink);
    for (Thread &thread : threads)
        thread.policy->setTraceSink(sink, thread.id);
}

void
System::setSpanRecorder(SpanRecorder *recorder)
{
    oscar_assert(!started && "attach the span recorder before run()");
    oscar_assert((recorder == nullptr || cfg.serving != nullptr) &&
                 "span recording requires serving mode");
    spans = recorder;
    if (spans != nullptr)
        spans->bind(threads.size(), cfg.seed);
}

void
System::setMetricRegistry(MetricRegistry *registry)
{
    oscar_assert(registry != nullptr && metrics == nullptr);
    metrics = registry;

    mRetiredUser = registry->counter("sys.retired.user");
    mRetiredOs = registry->counter("sys.retired.os");
    mInvocations = registry->counter("sys.invocations");
    mOffloads = registry->counter("sys.offloads");

    mem->registerMetrics(*registry);
    if (cfg.offloadEnabled) {
        queues.registerMetrics(*registry);
        mMigIntra = registry->counter("numa.migrations.intra");
        mMigInter = registry->counter("numa.migrations.inter");
        if (topo.config().dispatch == OsDispatchPolicy::WorkStealing) {
            mSteals = registry->counter("numa.steals");
            mSpills = registry->counter("numa.spills");
        }
    }
    if (cfg.dynamicThreshold)
        controller.registerMetrics(*registry);
    for (Thread &thread : threads) {
        if (thread.predictive != nullptr) {
            thread.predictive->registerMetrics(
                *registry, "pred.t" + std::to_string(thread.id));
        }
    }

    if (cfg.serving) {
        mRequestsOffered = registry->counter("serving.offered");
        mRequestsCompleted = registry->counter("serving.completed");
        mRequestLatency = registry->histogram("serving.latency", 48);
        registry->gauge("serving.inflight", [this] {
            std::uint64_t inflight = 0;
            for (const auto &queued : requestQueues)
                inflight += queued.size();
            for (const Thread &thread : threads)
                inflight += thread.servingRequest ? 1 : 0;
            return static_cast<double>(inflight);
        });
    }

    registry->counterFn("events.scheduled",
                        [this] { return events.scheduledCount(); });
    registry->counterFn("events.fired",
                        [this] { return events.firedCount(); });
    registry->counterFn("events.cancelled",
                        [this] { return events.cancelledCount(); });
    registry->gauge("events.pending", [this] {
        return static_cast<double>(events.pendingCount());
    });
    registry->gauge("events.slots", [this] {
        return static_cast<double>(events.slotCount());
    });

    // Log counts are process-wide; export them relative to attach time
    // so earlier process activity (other runs, tests) cannot leak into
    // this run's artifact. Concurrent sweep workers still share the
    // underlying counters; runs normally emit no logs at all.
    const std::uint64_t warn_base = warnCount();
    const std::uint64_t inform_base = informCount();
    registry->counterFn("log.warn", [warn_base] {
        return warnCount() - warn_base;
    });
    registry->counterFn("log.inform", [inform_base] {
        return informCount() - inform_base;
    });

    metricsInterval = registry->sampleEvery();
    nextMetricsSample = metricsInterval;
}

void
System::buildPolicy(Thread &thread)
{
    switch (cfg.policy) {
      case PolicyKind::Baseline:
        thread.policy = std::make_unique<BaselinePolicy>();
        return;
      case PolicyKind::StaticInstrumentation:
        thread.policy = std::make_unique<StaticInstrumentationPolicy>(
            *cfg.siProfile, cfg.migrationOneWayCycles,
            cfg.siDecisionCost);
        return;
      case PolicyKind::DynamicInstrumentation:
      case PolicyKind::HardwarePredictor: {
        // The snapshot copy pre-seeds the predictor with the
        // original's trained clone; only build a cold one if absent.
        if (thread.predictor == nullptr)
            thread.predictor = makePredictor(cfg.predictor);
        const ThresholdProvider &provider =
            cfg.dynamicThreshold
                ? static_cast<const ThresholdProvider &>(dynamicThreshold)
                : static_cast<const ThresholdProvider &>(staticThreshold);
        const Cycle cost =
            cfg.policy == PolicyKind::DynamicInstrumentation
                ? cfg.diDecisionCost
                : cfg.hiDecisionCost;
        auto policy = std::make_unique<PredictivePolicy>(
            *thread.predictor, provider, cost, cfg.policy);
        thread.predictive = policy.get();
        thread.policy = std::move(policy);
        return;
      }
    }
    oscar_panic("unhandled policy kind");
}

void
System::eventTrampoline(void *ctx, const EventPayload &payload,
                        Cycle now)
{
    static_cast<System *>(ctx)->dispatchEvent(payload, now);
}

void
System::dispatchEvent(const EventPayload &payload, Cycle now)
{
    switch (static_cast<EventKind>(payload.kind)) {
      case EventKind::ThreadStep:
        threadStep(payload.a);
        return;
      case EventKind::OsArrival:
        osCoreArrival(payload.a);
        return;
      case EventKind::OsComplete:
        osCoreComplete(payload.a, static_cast<InstCount>(payload.b));
        return;
      case EventKind::StealGo:
        startOsExecution(payload.a, now,
                         static_cast<unsigned>(payload.b));
        return;
      case EventKind::ArrivalDeliver: {
        const Request request = pendingArrival;
        // Commit the successor first: dispatch can complete requests
        // transitively, and only one arrival is ever outstanding.
        scheduleNextArrival();
        dispatchRequest(dispatchTarget(request), request);
        return;
      }
      case EventKind::ClientIssue: {
        const Request request = requests->issueRequest(payload.a, now);
        dispatchRequest(payload.a % static_cast<std::uint32_t>(
                            threads.size()),
                        request);
        return;
      }
    }
    oscar_panic("unknown event kind %u", payload.kind);
}

void
System::scheduleThread(std::uint32_t tid, Cycle when)
{
    events.schedulePayload(
        when, EventPayload{
                  static_cast<std::uint32_t>(EventKind::ThreadStep),
                  tid, 0});
}

InstCount
System::extendedLength(const OsInvocation &inv)
{
    InstCount length = inv.trueLength;
    if (inv.service->interruptible && interrupts.enabled()) {
        // Approximate the occupancy window with a CPI of ~1.3.
        const Cycle window = static_cast<Cycle>(length) * 13 / 10;
        length += interrupts.preemptionExtension(window);
    }
    return length;
}

double
SimResults::osShareAboveN(InstCount n) const
{
    for (std::size_t i = 0; i < 4; ++i) {
        if (kTailThresholds[i] == n)
            return osShareAbove[i];
    }
    oscar_panic("untracked tail threshold %llu",
                static_cast<unsigned long long>(n));
}

void
System::recordInvocationLength(InstCount length)
{
    if (!measuring)
        return;
    invocationLength.add(static_cast<double>(length));
    invocationLengthHist.add(length);
    for (std::size_t i = 0; i < 4; ++i) {
        if (length > SimResults::kTailThresholds[i])
            osInstrAboveTail[i] += length;
    }
}

void
System::retire(Thread &thread, InstCount count, bool privileged)
{
    // Before the phase machinery, so a measurement-start mark sample
    // taken below already includes this retirement.
    if (metrics != nullptr)
        *(privileged ? mRetiredOs : mRetiredUser) += count;

    if (measuring) {
        thread.measuredRetired += count;
        measuredRetiredAll += count;
        if (privileged)
            measuredOsRetired += count;

        if (cfg.dynamicThreshold &&
            measuredRetiredAll >= nextEpochBoundary) {
            const double feedback = epochFeedback();
            controller.onEpochEnd(feedback);
            if (trace != nullptr) {
                TraceEvent event;
                event.kind = TraceEventKind::EpochEnd;
                event.instruction = measuredRetiredAll;
                event.threshold = controller.currentThreshold();
                event.feedback = feedback;
                trace->emit(event);
            }
            thresholdTrajectory.push_back(
                {measuredRetiredAll, controller.currentThreshold()});
            mem->resetWindow();
            windowStartInstr = measuredRetiredAll;
            windowStartCycle = events.now();
            nextEpochBoundary =
                measuredRetiredAll + controller.epochLength();
        }

        // Serving mode's horizon is completed requests, not a
        // per-thread instruction quota.
        if (!servingMode() && !thread.quotaReached &&
            thread.measuredRetired >= cfg.measureInstructions) {
            thread.quotaReached = true;
            thread.finishCycle = events.now();
            ++finishedThreads;
        }
    } else {
        warmupRetired += count;
        if (privileged)
            warmupOsRetired += count;
        const InstCount target =
            cfg.warmupInstructions * threads.size();
        if (!servingMode() && warmupRetired >= target)
            enterMeasurement();
    }

    if (metrics != nullptr && metricsInterval != 0) {
        const InstCount total = warmupRetired + measuredRetiredAll;
        if (total >= nextMetricsSample) {
            metrics->takeSample(total, events.now());
            nextMetricsSample =
                (total / metricsInterval + 1) * metricsInterval;
        }
    }
}

void
System::enterMeasurement()
{
    measuring = true;
    measureStart = events.now();
    warmupPrivFraction =
        warmupRetired
            ? static_cast<double>(warmupOsRetired) /
                  static_cast<double>(warmupRetired)
            : 0.0;

    mem->resetStats();
    for (Core &core : cores)
        core.resetStats();
    queues.resetStats();
    for (Thread &thread : threads) {
        if (thread.predictive != nullptr)
            thread.predictive->stats().reset();
    }
    invocationsMeasured = 0;
    offloadedMeasured = 0;
    migIntraMeasured = 0;
    migInterMeasured = 0;
    invocationLength.reset();
    invocationLengthHist.reset();
    for (InstCount &tail : osInstrAboveTail)
        tail = 0;
    invocationsByService.fill(0);
    offloadsByService.fill(0);

    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::MeasurementStart;
        event.instruction = warmupRetired;
        event.feedback = warmupPrivFraction;
        trace->emit(event);
    }

    if (cfg.dynamicThreshold) {
        controller.begin(warmupPrivFraction);
        thresholdTrajectory.push_back(
            {measuredRetiredAll, controller.currentThreshold()});
        nextEpochBoundary = measuredRetiredAll + controller.epochLength();
        windowStartInstr = measuredRetiredAll;
        windowStartCycle = events.now();
    }

    // Mark sample: taken after every Stats reset above, so registry
    // counters (which never reset) satisfy "final minus this row ==
    // measured-region Stats aggregates" exactly.
    if (metrics != nullptr) {
        const std::size_t row = metrics->takeSample(
            warmupRetired + measuredRetiredAll, events.now());
        metrics->setMeasurementStartSample(row);
    }
}

double
System::epochFeedback()
{
    if (cfg.thresholdFeedback ==
        SystemConfig::ThresholdFeedback::L2HitRate) {
        return mem->windowL2HitRate();
    }
    const Cycle cycles = events.now() - windowStartCycle;
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(measuredRetiredAll - windowStartInstr) /
           static_cast<double>(cycles);
}

void
System::threadStep(std::uint32_t tid)
{
    Thread &thread = threads[tid];
    if (servingMode()) {
        if (servingDone)
            return;
        // A step lands here (a) woken by a dispatch, (b) resuming
        // after a token's execution, or (c) after the final segment
        // of a request — whose completion cycle is exactly now.
        if (thread.servingRequest && thread.segmentsLeft == 0) {
            completeRequest(tid, events.now());
            if (servingDone)
                return;
        }
        if (!thread.servingRequest &&
            !beginRequest(tid, events.now())) {
            thread.idle = true;
            return;
        }
    } else if (finishedThreads >= threads.size()) {
        return;
    }

    const WorkloadToken token = thread.workload->next(thread.rng,
                                                      thread.arch);
    const Cycle now = events.now();

    if (token.kind == TokenKind::UserBurst) {
        const ExecResult result = ExecEngine::execute(
            *mem, thread.core, ExecContext::User, token.burstLength,
            thread.workload->userProfile(), thread.rng);
        cores[thread.core].cycles().user += result.cycles;
        cores[thread.core].retireUser(token.burstLength);
        retire(thread, token.burstLength, false);
        if (spans != nullptr)
            spans->segment(tid, SpanPhase::User, now, result.cycles);
        scheduleThread(tid, now + result.cycles);
        return;
    }

    handleInvocation(tid, token.invocation);
}

void
System::handleInvocation(std::uint32_t tid, const OsInvocation &inv)
{
    Thread &thread = threads[tid];
    const Cycle now = events.now();

    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::InvocationBegin;
        event.thread = tid;
        event.service = static_cast<std::uint16_t>(inv.service->id);
        event.astate = inv.astate();
        event.actual = inv.trueLength;
        trace->emit(event);
    }

    const OffloadDecision decision = thread.policy->decide(inv);
    cores[thread.core].cycles().decision += decision.cost;
    if (spans != nullptr) {
        spans->segment(tid, SpanPhase::Decision, now, decision.cost,
                       static_cast<std::uint16_t>(inv.service->id));
    }
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::Decision;
        event.thread = tid;
        event.service = static_cast<std::uint16_t>(inv.service->id);
        event.offload = cfg.offloadEnabled && decision.offload;
        event.latency = decision.cost;
        event.predicted = decision.predictedLength;
        event.predictorUsed = decision.predictorUsed;
        trace->emit(event);
    }
    if (measuring) {
        ++invocationsMeasured;
        ++invocationsByService[static_cast<std::size_t>(
            inv.service->id)];
    }
    if (mInvocations != nullptr)
        ++*mInvocations;

    if (!cfg.offloadEnabled || !decision.offload) {
        // Execute inline on the invoking core.
        const InstCount length = extendedLength(inv);
        const ExecResult result = ExecEngine::execute(
            *mem, thread.core, ExecContext::Os, length,
            thread.workload->serviceProfile(inv.service->id),
            thread.rng);
        cores[thread.core].cycles().os += result.cycles;
        cores[thread.core].retireOs(length);
        thread.policy->observe(inv, decision, length);
        profile.observe(inv.service->id, length);
        recordInvocationLength(length);
        if (trace != nullptr) {
            TraceEvent event;
            event.kind = TraceEventKind::InvocationEnd;
            event.thread = tid;
            event.service = static_cast<std::uint16_t>(inv.service->id);
            event.actual = length;
            event.offload = false;
            trace->emit(event);
        }
        retire(thread, length, true);
        if (spans != nullptr) {
            spans->segment(tid, SpanPhase::OsInline,
                           now + decision.cost, result.cycles,
                           static_cast<std::uint16_t>(inv.service->id));
        }
        if (servingMode()) {
            oscar_assert(thread.servingRequest &&
                         thread.segmentsLeft > 0);
            --thread.segmentsLeft;
        }
        scheduleThread(tid, now + decision.cost + result.cycles);
        return;
    }

    // Off-load: migrate to the dispatched OS core.
    if (measuring) {
        ++offloadedMeasured;
        ++offloadsByService[static_cast<std::size_t>(inv.service->id)];
    }
    if (mOffloads != nullptr)
        ++*mOffloads;
    const unsigned target = queues.dispatchQueue(thread.core);
    const CoreId os_core = topo.osCoreId(target);
    const Cycle one_way = topo.migrationOneWay(thread.core, os_core);
    cores[thread.core].cycles().migration += one_way;
    countMigration(thread.core, os_core);
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::Migration;
        event.thread = tid;
        event.toOs = true;
        event.latency = one_way;
        if (queues.size() > 1)
            event.queue = target;
        trace->emit(event);
    }
    if (spans != nullptr) {
        spans->segment(tid, SpanPhase::MigrationOut,
                       now + decision.cost, one_way,
                       static_cast<std::uint16_t>(inv.service->id),
                       target);
    }
    thread.pendingInv = inv;
    thread.pendingDecision = decision;
    thread.pendingQueue = target;
    thread.spilled = false;
    thread.offloadArrival = now + decision.cost + one_way;
    events.schedulePayload(
        thread.offloadArrival,
        EventPayload{static_cast<std::uint32_t>(EventKind::OsArrival),
                     tid, 0});
}

void
System::osCoreArrival(std::uint32_t tid)
{
    Thread &thread = threads[tid];
    const Cycle now = events.now();
    const unsigned home = thread.pendingQueue;

    // Work-stealing overflow: an arrival finding its home queue deep
    // spills (once) to a strictly less-loaded peer, paying the OS-to-
    // OS-core transfer before queueing there.
    if (!thread.spilled) {
        const unsigned spill = queues.spillTarget(home);
        if (spill != kNoQueue) {
            thread.spilled = true;
            const CoreId from_core = topo.osCoreId(home);
            const CoreId to_core = topo.osCoreId(spill);
            const Cycle transfer =
                topo.migrationOneWay(from_core, to_core);
            cores[thread.core].cycles().migration += transfer;
            countMigration(from_core, to_core);
            queues.queue(home).countSpillOut();
            queues.queue(spill).countSpillIn();
            if (mSpills != nullptr)
                ++*mSpills;
            if (trace != nullptr) {
                TraceEvent event;
                event.kind = TraceEventKind::Spill;
                event.thread = tid;
                event.queueFrom = home;
                event.queue = spill;
                event.depth = static_cast<std::uint32_t>(
                    queues.queue(home).depth());
                event.latency = transfer;
                trace->emit(event);
            }
            if (spans != nullptr) {
                spans->segment(tid, SpanPhase::Spill, now, transfer,
                               static_cast<std::uint16_t>(
                                   thread.pendingInv.service->id),
                               spill);
            }
            thread.pendingQueue = spill;
            thread.offloadArrival = now + transfer;
            events.schedulePayload(
                thread.offloadArrival,
                EventPayload{
                    static_cast<std::uint32_t>(EventKind::OsArrival),
                    tid, 0});
            return;
        }
    }

    const OffloadRequest request{tid, now};
    if (queues.queue(home).offer(request, now)) {
        startOsExecution(tid, now, home);
    } else {
        // The request queued behind a busy core; a completely idle
        // peer (which, never completing, would otherwise never get a
        // chance to steal) takes it immediately.
        const unsigned thief = queues.idleThief(home);
        if (thief != kNoQueue)
            maybeSteal(thief, now);
    }
}

void
System::startOsExecution(std::uint32_t tid, Cycle start, unsigned target)
{
    Thread &thread = threads[tid];
    const CoreId os_core = topo.osCoreId(target);
    thread.servingOsCore = os_core;

    oscar_assert(start >= thread.offloadArrival);
    const Cycle waited = start - thread.offloadArrival;
    cores[thread.core].cycles().queueWait += waited;
    if (spans != nullptr)
        spans->queueWait(tid, start, waited, target);

    const InstCount length = extendedLength(thread.pendingInv);
    const ExecResult result = ExecEngine::execute(
        *mem, os_core, ExecContext::Os, length,
        thread.workload->serviceProfile(thread.pendingInv.service->id),
        thread.rng);
    cores[os_core].cycles().os += result.cycles;
    cores[os_core].retireOs(length);
    if (spans != nullptr) {
        spans->segment(tid, SpanPhase::OsExec, start, result.cycles,
                       static_cast<std::uint16_t>(
                           thread.pendingInv.service->id),
                       target);
    }

    events.schedulePayload(
        start + result.cycles,
        EventPayload{static_cast<std::uint32_t>(EventKind::OsComplete),
                     tid, static_cast<std::uint64_t>(length)});
}

void
System::osCoreComplete(std::uint32_t tid, InstCount executed_length)
{
    Thread &thread = threads[tid];
    const Cycle now = events.now();
    const unsigned queue_idx = topo.queueOf(thread.servingOsCore);

    thread.policy->observe(thread.pendingInv, thread.pendingDecision,
                           executed_length);
    profile.observe(thread.pendingInv.service->id, executed_length);
    recordInvocationLength(executed_length);
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::InvocationEnd;
        event.thread = tid;
        event.service = static_cast<std::uint16_t>(
            thread.pendingInv.service->id);
        event.actual = executed_length;
        event.offload = true;
        trace->emit(event);
    }
    retire(thread, executed_length, true);

    // Migrate back to the user core.
    const Cycle one_way =
        topo.migrationOneWay(thread.servingOsCore, thread.core);
    cores[thread.core].cycles().migration += one_way;
    countMigration(thread.servingOsCore, thread.core);
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::Migration;
        event.thread = tid;
        event.toOs = false;
        event.latency = one_way;
        if (queues.size() > 1)
            event.queue = queue_idx;
        trace->emit(event);
    }
    if (spans != nullptr) {
        spans->segment(tid, SpanPhase::MigrationBack, now, one_way,
                       static_cast<std::uint16_t>(
                           thread.pendingInv.service->id),
                       queue_idx);
    }
    if (servingMode()) {
        oscar_assert(thread.servingRequest && thread.segmentsLeft > 0);
        --thread.segmentsLeft;
    }
    scheduleThread(tid, now + one_way);

    // Admit the next queued request; an empty work-stealing queue
    // raids the deepest peer instead of going idle.
    OffloadRequest next{};
    if (queues.queue(queue_idx).completeCurrent(now, next))
        startOsExecution(next.threadId, now, queue_idx);
    else
        maybeSteal(queue_idx, now);
}

void
System::maybeSteal(unsigned thief, Cycle now)
{
    const unsigned victim = queues.stealVictim(thief);
    if (victim == kNoQueue)
        return;
    const OffloadRequest req = queues.queue(victim).stealOldest();
    Thread &thread = threads[req.threadId];
    const CoreId from_core = topo.osCoreId(victim);
    const CoreId to_core = topo.osCoreId(thief);
    const Cycle transfer = topo.migrationOneWay(from_core, to_core);
    cores[thread.core].cycles().migration += transfer;
    countMigration(from_core, to_core);
    if (mSteals != nullptr)
        ++*mSteals;
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::Steal;
        event.thread = req.threadId;
        event.queueFrom = victim;
        event.queue = thief;
        event.latency = transfer;
        trace->emit(event);
    }
    if (spans != nullptr)
        spans->stealTransfer(req.threadId, now, transfer, thief);
    thread.pendingQueue = thief;
    // The thief is committed now (so later arrivals queue behind the
    // stolen request) but service starts after the transfer.
    const Cycle start = now + transfer;
    queues.queue(thief).adoptStolen(req, start);
    const std::uint32_t stolen_tid = req.threadId;
    events.schedulePayload(
        start,
        EventPayload{static_cast<std::uint32_t>(EventKind::StealGo),
                     stolen_tid, static_cast<std::uint64_t>(thief)});
}

void
System::countMigration(CoreId from, CoreId to)
{
    if (topo.nodeOf(from) == topo.nodeOf(to)) {
        if (mMigIntra != nullptr)
            ++*mMigIntra;
        if (measuring)
            ++migIntraMeasured;
    } else {
        if (mMigInter != nullptr)
            ++*mMigInter;
        if (measuring)
            ++migInterMeasured;
    }
}

// ---------------------------------------------------------------------
// Serving mode

void
System::scheduleNextArrival()
{
    pendingArrival = requests->nextArrival();
    events.schedulePayload(
        pendingArrival.issued,
        EventPayload{
            static_cast<std::uint32_t>(EventKind::ArrivalDeliver), 0,
            0});
}

void
System::scheduleClientIssue(std::uint32_t client, Cycle when)
{
    events.schedulePayload(
        when, EventPayload{
                  static_cast<std::uint32_t>(EventKind::ClientIssue),
                  client, 0});
}

std::uint32_t
System::dispatchTarget(const Request &request) const
{
    const auto n = static_cast<std::uint32_t>(threads.size());
    if (cfg.serving->dispatch == DispatchPolicy::TenantAffinity)
        return request.tenant % n;
    if (cfg.serving->dispatch == DispatchPolicy::NodeAffinity) {
        // User cores interleave over nodes (c mod N), so node `node`
        // owns user cores node, node+N, node+2N, ...
        const auto nodes = static_cast<std::uint32_t>(topo.nodes());
        const std::uint32_t node = request.tenant % nodes;
        const std::uint32_t count = (n - node + nodes - 1) / nodes;
        const auto pick = static_cast<std::uint32_t>(request.id % count);
        return node + pick * nodes;
    }
    return static_cast<std::uint32_t>(request.id % n);
}

void
System::dispatchRequest(std::uint32_t tid, const Request &request)
{
    if (servingDone)
        return;
    if (mRequestsOffered != nullptr)
        ++*mRequestsOffered;
    if (measuring)
        ++requestsOfferedMeasured;
    requestQueues[tid].push_back(request);
    Thread &thread = threads[tid];
    if (thread.idle) {
        thread.idle = false;
        scheduleThread(tid, events.now());
    }
}

bool
System::beginRequest(std::uint32_t tid, Cycle now)
{
    Thread &thread = threads[tid];
    if (requestQueues[tid].empty())
        return false;
    thread.currentRequest = requestQueues[tid].front();
    requestQueues[tid].pop_front();
    thread.servingRequest = true;
    thread.segmentsLeft = thread.currentRequest.segments;
    oscar_assert(now >= thread.currentRequest.issued);
    const Cycle waited = now - thread.currentRequest.issued;
    if (measuring)
        requestDispatchWait.add(static_cast<double>(waited));
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::RequestStart;
        event.thread = tid;
        event.requestId = thread.currentRequest.id;
        event.tenant = thread.currentRequest.tenant;
        event.actual = thread.currentRequest.segments;
        event.latency = waited;
        // Carry the home dispatch queue when K>1, matching the
        // qenter/qexit convention, so spans reconstructed from traces
        // can bind a request to its queue.
        if (queues.size() > 1)
            event.queue = topo.homeQueue(thread.core);
        trace->emit(event);
    }
    if (spans != nullptr) {
        spans->begin(tid, thread.currentRequest.id,
                     thread.currentRequest.tenant,
                     thread.currentRequest.segments,
                     thread.currentRequest.issued, now);
    }
    return true;
}

void
System::completeRequest(std::uint32_t tid, Cycle now)
{
    Thread &thread = threads[tid];
    oscar_assert(thread.servingRequest && thread.segmentsLeft == 0);
    thread.servingRequest = false;
    const Cycle latency = now - thread.currentRequest.issued;

    ++requestsCompletedTotal;
    if (mRequestsCompleted != nullptr)
        ++*mRequestsCompleted;
    if (mRequestLatency != nullptr)
        mRequestLatency->add(latency);
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::RequestEnd;
        event.thread = tid;
        event.requestId = thread.currentRequest.id;
        event.tenant = thread.currentRequest.tenant;
        event.latency = latency;
        if (queues.size() > 1)
            event.queue = topo.homeQueue(thread.core);
        trace->emit(event);
    }
    // Before the measuring block: the request that triggers
    // enterMeasurement below is warmup, exactly like requestLatency.
    if (spans != nullptr)
        spans->complete(tid, now, measuring);

    if (measuring) {
        requestLatency.add(latency);
        ++requestsCompletedMeasured;
        if (requestsCompletedMeasured >= cfg.serving->measureRequests) {
            servingDone = true;
            servingEndCycle = now;
        }
    } else if (requestsCompletedTotal >= cfg.serving->warmupRequests) {
        enterMeasurement();
    }

    if (cfg.serving->arrival == ArrivalModel::ClosedLoop &&
        !servingDone) {
        scheduleClientIssue(thread.currentRequest.client,
                            now + requests->thinkTime());
    }
}

void
System::beginRun()
{
    oscar_assert(!started);
    started = true;

    if (cfg.serving) {
        // The stream's seed is decorrelated from the simulator's root
        // so attaching the front-end perturbs no workload/interrupt
        // stream.
        requests = std::make_unique<RequestStream>(
            *cfg.serving, cfg.seed ^ 0x5245515354ULL);
        requestQueues.resize(threads.size());
        for (Thread &thread : threads)
            thread.idle = true;

        if (cfg.serving->arrival == ArrivalModel::OpenLoop) {
            scheduleNextArrival();
        } else {
            const auto clients =
                cfg.serving->clientsPerCore *
                static_cast<std::uint32_t>(threads.size());
            for (std::uint32_t c = 0; c < clients; ++c)
                scheduleClientIssue(c, requests->thinkTime());
        }
        return;
    }

    for (std::uint32_t t = 0; t < threads.size(); ++t)
        scheduleThread(t, 0);
}

void
System::runLoop(bool stop_at_measurement_start)
{
    if (servingMode()) {
        while (!servingDone) {
            if (stop_at_measurement_start && measuring)
                return;
            if (events.empty())
                oscar_panic("event queue drained before the serving "
                            "horizon (%llu of %llu measured requests)",
                            static_cast<unsigned long long>(
                                requestsCompletedMeasured),
                            static_cast<unsigned long long>(
                                cfg.serving->measureRequests));
            events.runOne();
        }
        return;
    }

    while (finishedThreads < threads.size()) {
        if (stop_at_measurement_start && measuring)
            return;
        if (events.empty())
            oscar_panic("event queue drained before all threads finished");
        events.runOne();
    }
}

SimResults
System::finishRun()
{
    // Forced final sample so the exported series always ends at the
    // run's true end state (refreshing an equal-instant periodic row).
    if (metrics != nullptr) {
        metrics->takeSample(warmupRetired + measuredRetiredAll,
                            events.now(), /*refresh_equal=*/true);
    }
    return collectResults();
}

SimResults
System::run()
{
    beginRun();
    runLoop(/*stop_at_measurement_start=*/false);
    return finishRun();
}

void
System::runToMeasurementStart()
{
    beginRun();
    runLoop(/*stop_at_measurement_start=*/true);
    oscar_assert(measuring &&
                 "run reached its horizon before measurement started");
}

SimResults
System::resumeRun()
{
    oscar_assert(started && measuring);
    runLoop(/*stop_at_measurement_start=*/false);
    return finishRun();
}

SimResults
System::collectResults() const
{
    SimResults results;
    results.workload = makeWorkloadSpec(cfg.workload).name;
    results.policy = policyShortName(cfg.policy);

    Cycle last_finish = measureStart;
    if (servingMode()) {
        // The serving horizon ends at the closing request, not at a
        // per-thread instruction quota.
        last_finish = std::max(servingEndCycle, measureStart);
    } else {
        for (const Thread &thread : threads)
            last_finish = std::max(last_finish, thread.finishCycle);
    }
    results.makespan = last_finish - measureStart;
    results.retired = measuredRetiredAll;
    results.throughput =
        results.makespan
            ? static_cast<double>(results.retired) /
                  static_cast<double>(results.makespan)
            : 0.0;
    results.privFraction =
        measuredRetiredAll
            ? static_cast<double>(measuredOsRetired) /
                  static_cast<double>(measuredRetiredAll)
            : 0.0;

    double user_l2 = 0.0;
    std::uint64_t c2c = 0;
    std::uint64_t invalidations = 0;
    for (unsigned c = 0; c < cfg.userCores; ++c) {
        user_l2 += mem->stats(c).l2HitRate();
        c2c += mem->stats(c).c2cTransfers;
        invalidations += mem->stats(c).invalidationsReceived;
    }
    results.userL2HitRate = user_l2 / cfg.userCores;
    double combined = user_l2;
    if (cfg.offloadEnabled) {
        double os_l2 = 0.0;
        for (unsigned k = 0; k < topo.osCoreCount(); ++k) {
            const CoreMemStats &os_stats = mem->stats(topo.osCoreId(k));
            os_l2 += os_stats.l2HitRate();
            c2c += os_stats.c2cTransfers;
            invalidations += os_stats.invalidationsReceived;
        }
        results.osL2HitRate = os_l2 / topo.osCoreCount();
        combined += os_l2;
    }
    results.combinedL2HitRate = combined / cfg.totalCores();
    results.c2cTransfers = c2c;
    results.invalidations = invalidations;

    results.invocations = invocationsMeasured;
    results.offloaded = offloadedMeasured;
    results.offloadFraction =
        invocationsMeasured
            ? static_cast<double>(offloadedMeasured) / invocationsMeasured
            : 0.0;
    results.meanInvocationLength = invocationLength.mean();
    results.offloadRatio.addMany(offloadedMeasured, invocationsMeasured);
    results.invocationLengths = invocationLengthHist;

    if (servingMode()) {
        results.servingEnabled = true;
        results.requestsCompleted = requestsCompletedMeasured;
        results.requestsOffered = requestsOfferedMeasured;
        results.requestThroughput =
            results.makespan
                ? static_cast<double>(requestsCompletedMeasured) *
                      1000.0 / static_cast<double>(results.makespan)
                : 0.0;
        results.requestLatency = requestLatency;
        results.requestDispatchWait = requestDispatchWait;
        if (spans != nullptr)
            results.spans = std::make_shared<SpanResults>(spans->results());
    }

    if (cfg.offloadEnabled) {
        const unsigned K = queues.size();
        double total_util = 0.0;
        std::uint64_t steals = 0;
        std::uint64_t spills = 0;
        results.osQueues.reserve(K);
        for (unsigned k = 0; k < K; ++k) {
            const OsCoreQueue &q = queues.queue(k);
            const CoreId core_id = topo.osCoreId(k);
            OsQueueResult entry;
            entry.queue = k;
            entry.core = core_id;
            entry.node = topo.nodeOf(core_id);
            entry.admitted = q.admitted();
            entry.stealsIn = q.stealsIn();
            entry.stealsOut = q.stealsOut();
            entry.spillsIn = q.spillsIn();
            entry.spillsOut = q.spillsOut();
            entry.utilization =
                cores[core_id].utilization(results.makespan);
            entry.queueDelay = q.queueDelay();
            entry.wait = q.waitHistogram();
            total_util += entry.utilization;
            steals += entry.stealsIn;
            spills += entry.spillsIn;
            results.osQueues.push_back(std::move(entry));
        }
        results.steals = steals;
        results.spills = spills;
        results.numaMigrationsIntra = migIntraMeasured;
        results.numaMigrationsInter = migInterMeasured;
        results.osCoreUtilization = total_util / K;
        if (K == 1) {
            // Bit-exact legacy path: no merge round-off for the
            // golden single-OS-core experiments.
            results.meanQueueDelay = queues.queue(0).queueDelay().mean();
            results.maxQueueDelay = queues.queue(0).queueDelay().max();
        } else {
            RunningStat pooled;
            for (unsigned k = 0; k < K; ++k)
                pooled.merge(queues.queue(k).queueDelay());
            results.meanQueueDelay = pooled.mean();
            results.maxQueueDelay = pooled.max();
        }
    }

    for (const Core &core : cores) {
        results.decisionCycles += core.cycles().decision;
        results.migrationCycles += core.cycles().migration;
        results.queueWaitCycles += core.cycles().queueWait;
    }

    for (const Thread &thread : threads) {
        if (thread.predictive != nullptr)
            results.accuracy.merge(thread.predictive->stats());
    }

    for (std::size_t i = 0; i < 4; ++i) {
        results.osShareAbove[i] =
            measuredRetiredAll
                ? static_cast<double>(osInstrAboveTail[i]) /
                      static_cast<double>(measuredRetiredAll)
                : 0.0;
    }

    results.invocationsByService = invocationsByService;
    results.offloadsByService = offloadsByService;

    results.finalThreshold = cfg.dynamicThreshold
                                 ? controller.currentThreshold()
                                 : cfg.staticThreshold;
    results.thresholdSwitches = controller.switches();
    results.thresholdTrajectory = thresholdTrajectory;
    results.warmupPrivFraction = warmupPrivFraction;
    return results;
}

} // namespace oscar
