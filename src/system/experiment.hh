/**
 * @file
 * Experiment helpers shared by the bench harnesses and examples:
 * canned configurations, off-line profiling for SI, normalized
 * throughput comparisons, and plain-text table rendering.
 */

#ifndef OSCAR_SYSTEM_EXPERIMENT_HH_
#define OSCAR_SYSTEM_EXPERIMENT_HH_

#include <memory>
#include <string>
#include <vector>

#include "system/system.hh"

namespace oscar
{

/**
 * Canned configurations and comparison runs.
 */
class ExperimentRunner
{
  public:
    /** Uni-processor baseline: one core, no off-loading (Figure 4/5). */
    static SystemConfig baselineConfig(WorkloadKind workload,
                                       std::uint64_t seed = 42);

    /**
     * Off-loading configuration with the HI policy and a fixed N.
     *
     * @param workload Benchmark.
     * @param static_n Off-load trigger threshold.
     * @param migration_one_way One-way migration latency in cycles.
     * @param seed Root seed (match the baseline's for comparisons).
     */
    static SystemConfig hardwareConfig(WorkloadKind workload,
                                       InstCount static_n,
                                       Cycle migration_one_way,
                                       std::uint64_t seed = 42);

    /** Same as hardwareConfig but with the dynamic-N controller. */
    static SystemConfig hardwareDynamicConfig(WorkloadKind workload,
                                              Cycle migration_one_way,
                                              std::uint64_t seed = 42);

    /** DI: software instrumentation of every OS entry point. */
    static SystemConfig dynamicInstrConfig(WorkloadKind workload,
                                           Cycle migration_one_way,
                                           Cycle di_cost,
                                           std::uint64_t seed = 42);

    /** SI: static instrumentation; profile collected automatically. */
    static SystemConfig
    staticInstrConfig(WorkloadKind workload, Cycle migration_one_way,
                      std::shared_ptr<const ServiceProfile> profile,
                      std::uint64_t seed = 42);

    /**
     * Run a short profiling pass (baseline policy) and return the
     * per-service mean run lengths — the paper's "off-line profiling".
     */
    static std::shared_ptr<const ServiceProfile>
    profileServices(WorkloadKind workload, std::uint64_t seed = 42);

    /** Build and run a system. */
    static SimResults run(const SystemConfig &config);

    /**
     * Build and run a system with a trace sink attached (see
     * sim/trace.hh). A null sink behaves exactly like run(config).
     */
    static SimResults run(const SystemConfig &config, TraceSink *trace);

    /**
     * Build and run a system with a trace sink and/or metric registry
     * attached (see sim/metrics.hh). Null arguments behave exactly
     * like run(config); the registry must outlive the call.
     */
    static SimResults run(const SystemConfig &config, TraceSink *trace,
                          MetricRegistry *metrics);

    /**
     * Build and run a system with any combination of trace sink,
     * metric registry, and span recorder attached (see sim/span.hh).
     * Null arguments behave exactly like run(config); a non-null
     * recorder requires a serving configuration.
     */
    static SimResults run(const SystemConfig &config, TraceSink *trace,
                          MetricRegistry *metrics,
                          SpanRecorder *spans);

    /**
     * Run a configuration and its uni-processor baseline with the same
     * seed, returning variant throughput / baseline throughput — the
     * normalized IPC of Figures 4 and 5.
     */
    static double normalizedThroughput(const SystemConfig &config);

    /**
     * Uni-processor baseline for a full variant configuration: the
     * baseline keeps every environment knob of the variant (cache
     * geometry, memory timings, interrupt rate, coupling scale,
     * serving front-end, seed, warmup/measure lengths) and strips only
     * the off-loading machinery. Cached process-wide under a key that
     * encodes all of those fields, so two points share a cached
     * baseline only when their full warmup environment matches — a
     * point with, say, a scaled coupling factor can no longer silently
     * normalize against the default-environment baseline.
     */
    static SimResults baselineResults(const SystemConfig &config);

    /**
     * Convenience overload: baseline for the given workload/seed with
     * every other environment knob at its default. Equivalent to
     * baselineResults(baselineConfig(workload, seed)) with the given
     * horizon lengths.
     */
    static SimResults baselineResults(WorkloadKind workload,
                                      std::uint64_t seed,
                                      InstCount measure_instructions,
                                      InstCount warmup_instructions);

    /** Reset the baseline cache (tests). */
    static void clearBaselineCache();
};

/**
 * Minimal fixed-width text table for bench output.
 */
class TextTable
{
  public:
    /** @param headers Column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> columnHeaders;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed decimals. */
std::string formatDouble(double value, int decimals = 3);

/**
 * Append a textual encoding of every configuration field that shapes
 * a run's warm-up prefix under the Baseline policy — workload, seed,
 * warmup length, coupling scale, interrupt rate, cache geometry,
 * memory timings, and the serving front-end (minus its measured
 * horizon). Shared by the baseline-result cache and the sweep
 * runner's warm-snapshot cache so the two can never disagree about
 * which environments are interchangeable.
 */
void appendConfigEnvironmentKey(std::string &key,
                                const SystemConfig &config);

} // namespace oscar

#endif // OSCAR_SYSTEM_EXPERIMENT_HH_
