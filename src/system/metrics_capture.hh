/**
 * @file
 * Serialization of a sampled MetricRegistry as an `oscar.metrics.v1`
 * JSONL artifact.
 *
 * Document layout (one JSON object per line):
 *
 *   meta   {"schema":"oscar.metrics.v1","sample_every":K,
 *           "measure_sample":M,"config":{...},
 *           "series":[{"name":"...","kind":"counter|gauge"},...]}
 *   row    {"sample":i,"instant":I,"cycle":C,
 *           "cum":[...],"delta":[...]}
 *
 * `cum` holds each series' cumulative value at the sample in series
 * order; `delta` the change since the previous row (first row: equal
 * to `cum`). Counter columns serialize as integers, gauge columns in
 * jsonNumber's round-trippable format. `measure_sample` is the index
 * of the measurement-start mark row, or -1 when the run never left
 * warmup. The document contains no timestamps, hostnames or paths and
 * the simulator is deterministic per config+seed, so the bytes are
 * reproducible — the property the determinism tests diff for.
 */

#ifndef OSCAR_SYSTEM_METRICS_CAPTURE_HH_
#define OSCAR_SYSTEM_METRICS_CAPTURE_HH_

#include <string>

#include "sim/metrics.hh"
#include "system/system_config.hh"

namespace oscar
{

/** Meta line: schema, sampling parameters, config, series catalogue. */
std::string metricsMetaJson(const MetricRegistry &registry,
                            const SystemConfig &config);

/** The complete document: meta line + one row per sample. */
std::string metricsDocument(const MetricRegistry &registry,
                            const SystemConfig &config);

/**
 * Write the document to `path`.
 *
 * @return true when the file was written; false (with a warning) when
 *         it could not be opened.
 */
bool writeMetricsFile(const MetricRegistry &registry,
                      const SystemConfig &config,
                      const std::string &path);

} // namespace oscar

#endif // OSCAR_SYSTEM_METRICS_CAPTURE_HH_
