/**
 * @file
 * Whole-run trace capture and the golden-trace catalogue.
 *
 * captureTrace() runs one system with a MemoryTraceSink attached and
 * returns the complete `oscar.trace.v1` document (header + one line
 * per event) together with the run's results. Because a System is
 * single-threaded and fully deterministic per seed, the captured text
 * is byte-identical across repeated runs with the same configuration —
 * the property the replay-verification tests assert and the reason
 * golden traces can be diffed byte-for-byte on every build.
 *
 * goldenTraceConfigs() names the small, fast configurations whose
 * traces are checked in under tests/golden/. Changing anything that
 * perturbs simulated behaviour (event ordering, predictor updates,
 * controller decisions, RNG consumption) shows up as a trace diff in
 * ctest; EXPERIMENTS.md describes how to inspect and re-bless them.
 */

#ifndef OSCAR_SYSTEM_TRACE_CAPTURE_HH_
#define OSCAR_SYSTEM_TRACE_CAPTURE_HH_

#include <string>
#include <vector>

#include "system/experiment.hh"
#include "system/system.hh"

namespace oscar
{

/**
 * Trace header line: schema identifier plus the full configuration.
 * Contains no timestamps, hostnames or paths, so it is reproducible.
 */
std::string traceHeaderJson(const SystemConfig &config);

/** A complete in-memory capture of one traced run. */
struct TraceCapture
{
    /** Header JSON line (no newline). */
    std::string header;
    /** One JSON line per event, in emission order (no newlines). */
    std::vector<std::string> lines;
    /** The run's results. */
    SimResults results;

    /** The serialized document: header + events, '\n'-terminated. */
    std::string text() const;
};

/** Run `config` with tracing on and capture the full event stream. */
TraceCapture captureTrace(const SystemConfig &config);

/**
 * Run `config` streaming the trace straight to `path` (JSONL).
 *
 * @return true when the file was written; false (with a warning) when
 *         it could not be opened.
 */
bool writeTraceFile(const SystemConfig &config, const std::string &path);

/** One named golden-trace scenario. */
struct GoldenTraceConfig
{
    /** Stable name; the checked-in file is <name>.trace.jsonl. */
    std::string name;
    /** The (deliberately small) configuration to trace. */
    SystemConfig config;
};

/** The golden-trace catalogue, in a stable order. */
const std::vector<GoldenTraceConfig> &goldenTraceConfigs();

/** Look up a golden scenario by name; null when unknown. */
const GoldenTraceConfig *findGoldenTraceConfig(const std::string &name);

} // namespace oscar

#endif // OSCAR_SYSTEM_TRACE_CAPTURE_HH_
