/**
 * @file
 * Implementation of `oscar.metrics.v1` serialization.
 */

#include "system/metrics_capture.hh"

#include <cstdio>

#include "core/offload_policy.hh"
#include "core/run_length_predictor.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

namespace oscar
{

namespace
{

const char *
predictorShortName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Cam: return "cam";
      case PredictorKind::DirectMapped: return "direct-mapped";
      case PredictorKind::Infinite: return "infinite";
    }
    return "?";
}

/** Counter columns carry exact uint64 values; emit them as integers. */
void
writeValue(JsonWriter &w, MetricKind kind, double value)
{
    if (kind == MetricKind::Counter)
        w.value(static_cast<std::uint64_t>(value));
    else
        w.value(value);
}

/** One sample row with cumulative and since-previous-row values. */
std::string
rowJson(const MetricRegistry &registry, std::size_t index)
{
    const auto &rows = registry.samples();
    const auto &series = registry.series();
    const MetricRegistry::Sample &row = rows[index];
    const MetricRegistry::Sample *prev =
        index > 0 ? &rows[index - 1] : nullptr;

    JsonWriter w;
    w.beginObject();
    w.field("sample", static_cast<std::uint64_t>(index));
    w.field("instant", row.instant);
    w.field("cycle", row.cycle);
    w.key("cum");
    w.beginArray();
    for (std::size_t s = 0; s < series.size(); ++s)
        writeValue(w, series[s].kind, row.values[s]);
    w.endArray();
    w.key("delta");
    w.beginArray();
    for (std::size_t s = 0; s < series.size(); ++s) {
        const double before = prev ? prev->values[s] : 0.0;
        writeValue(w, series[s].kind, row.values[s] - before);
    }
    w.endArray();
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

} // namespace

std::string
metricsMetaJson(const MetricRegistry &registry,
                const SystemConfig &config)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kMetricsSchema);
    w.field("sample_every", registry.sampleEvery());
    const std::size_t mark = registry.measurementStartSample();
    w.field("measure_sample",
            mark == MetricRegistry::kNoSample
                ? static_cast<std::int64_t>(-1)
                : static_cast<std::int64_t>(mark));
    w.key("config");
    w.beginObject();
    w.field("workload", workloadName(config.workload));
    w.field("policy", policyShortName(config.policy));
    w.field("predictor", predictorShortName(config.predictor));
    w.field("user_cores", config.userCores);
    w.field("offload_enabled", config.offloadEnabled);
    w.field("dynamic_threshold", config.dynamicThreshold);
    w.field("static_threshold", config.staticThreshold);
    w.field("migration_one_way_cycles", config.migrationOneWayCycles);
    w.field("seed", config.seed);
    w.field("warmup_instructions", config.warmupInstructions);
    w.field("measure_instructions", config.measureInstructions);
    w.endObject();
    w.key("series");
    w.beginArray();
    for (const MetricRegistry::Series &s : registry.series()) {
        w.beginObject();
        w.field("name", s.name);
        w.field("kind", metricKindName(s.kind));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

std::string
metricsDocument(const MetricRegistry &registry,
                const SystemConfig &config)
{
    std::string out = metricsMetaJson(registry, config);
    out += '\n';
    for (std::size_t i = 0; i < registry.samples().size(); ++i) {
        out += rowJson(registry, i);
        out += '\n';
    }
    return out;
}

bool
writeMetricsFile(const MetricRegistry &registry,
                 const SystemConfig &config, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        oscar_warn("cannot open metrics file '%s'", path.c_str());
        return false;
    }
    const std::string doc = metricsDocument(registry, config);
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), file);
    std::fclose(file);
    if (written != doc.size()) {
        oscar_warn("short write to metrics file '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace oscar
