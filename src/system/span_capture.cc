/**
 * @file
 * Implementation of `oscar.spans.v1` serialization.
 */

#include "system/span_capture.hh"

#include <cstdio>

#include "core/offload_policy.hh"
#include "core/run_length_predictor.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

namespace oscar
{

namespace
{

const char *
predictorShortName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Cam: return "cam";
      case PredictorKind::DirectMapped: return "direct-mapped";
      case PredictorKind::Infinite: return "infinite";
    }
    return "?";
}

} // namespace

std::string
spansMetaJson(const SpanResults &results, const SystemConfig &config)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kSpansSchema);
    w.field("spans", results.spansRecorded);
    w.field("exemplar_capacity",
            static_cast<std::uint64_t>(results.exemplarCapacity));
    w.key("config");
    w.beginObject();
    w.field("workload", workloadName(config.workload));
    w.field("policy", policyShortName(config.policy));
    w.field("predictor", predictorShortName(config.predictor));
    w.field("user_cores", config.userCores);
    w.field("offload_enabled", config.offloadEnabled);
    w.field("dynamic_threshold", config.dynamicThreshold);
    w.field("static_threshold", config.staticThreshold);
    w.field("migration_one_way_cycles", config.migrationOneWayCycles);
    w.field("seed", config.seed);
    w.endObject();
    w.key("phases");
    w.beginArray();
    for (std::size_t p = 0; p < kNumSpanPhases; ++p)
        w.value(spanPhaseName(static_cast<SpanPhase>(p)));
    w.endArray();
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

std::string
spanPhaseJson(const char *name, const LatencyHistogram &histogram)
{
    JsonWriter w;
    w.beginObject();
    w.field("phase", name);
    w.field("count", histogram.count());
    w.field("sum", histogram.sum());
    w.field("mean", histogram.mean());
    w.field("min", histogram.min());
    w.field("max", histogram.max());
    w.field("p50", histogram.quantile(0.50));
    w.field("p95", histogram.quantile(0.95));
    w.field("p99", histogram.quantile(0.99));
    w.field("p999", histogram.quantile(0.999));
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

std::string
spanExemplarJson(const RequestSpan &span)
{
    JsonWriter w;
    w.beginObject();
    w.field("span", span.requestId);
    w.field("tn", span.tenant);
    w.field("t", span.thread);
    w.field("segs_n", span.segments);
    w.field("seed", span.seed);
    w.field("issued", span.issued);
    w.field("started", span.started);
    w.field("completed", span.completed);
    w.field("lat", span.latency());
    w.key("segs");
    w.beginArray();
    for (const SpanSegment &seg : span.segs) {
        w.beginObject();
        w.field("ph", spanPhaseName(seg.phase));
        w.field("start", seg.start);
        w.field("cy", seg.cycles);
        if (seg.service != kNoSpanService)
            w.field("sv", static_cast<unsigned>(seg.service));
        if (seg.queue != kNoSpanQueue)
            w.field("q", seg.queue);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    oscar_assert(w.complete());
    return w.str();
}

std::string
spansDocument(const SpanResults &results, const SystemConfig &config)
{
    std::string out = spansMetaJson(results, config);
    out += '\n';
    out += spanPhaseJson("total", results.total);
    out += '\n';
    for (std::size_t p = 0; p < kNumSpanPhases; ++p) {
        out += spanPhaseJson(spanPhaseName(static_cast<SpanPhase>(p)),
                             results.phase[p]);
        out += '\n';
    }
    for (const RequestSpan &span : results.exemplars) {
        out += spanExemplarJson(span);
        out += '\n';
    }
    return out;
}

bool
writeSpansFile(const SpanResults &results, const SystemConfig &config,
               const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        oscar_warn("cannot open spans file '%s'", path.c_str());
        return false;
    }
    const std::string doc = spansDocument(results, config);
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), file);
    std::fclose(file);
    if (written != doc.size()) {
        oscar_warn("short write to spans file '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace oscar
