/**
 * @file
 * Off-load decision policies (Section V-B, Figure 5).
 *
 * Four policies are modelled:
 *  - Baseline: never off-load (uni-processor execution);
 *  - SI, static instrumentation: off-line profiling identifies OS
 *    routines whose *mean* run length is at least twice the migration
 *    latency; only those are instrumented, each paying a small
 *    software cost per invocation and always off-loading
 *    (Chakraborty et al. style);
 *  - DI, dynamic instrumentation: every OS entry point carries
 *    decision code — functionally the same predictor+threshold logic
 *    as the hardware scheme but paying a software instrumentation cost
 *    on *every* privileged entry (Mogul et al. style, extended to all
 *    entry points);
 *  - HI, hardware instrumentation: the paper's proposal — the same
 *    decision quality at a single-cycle cost.
 */

#ifndef OSCAR_CORE_OFFLOAD_POLICY_HH_
#define OSCAR_CORE_OFFLOAD_POLICY_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/predictor_stats.hh"
#include "core/run_length_predictor.hh"
#include "core/threshold_controller.hh"
#include "os/invocation.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace oscar
{

class MetricRegistry;
class TraceSink;

/** What the policy decided for one invocation. */
struct OffloadDecision
{
    /** True to migrate the sequence to the OS core. */
    bool offload = false;
    /** Cycles the decision itself cost (instrumentation overhead). */
    Cycle cost = 0;
    /** Predicted run length, when a predictor was consulted. */
    InstCount predictedLength = 0;
    /** True when a predictor was consulted. */
    bool predictorUsed = false;
    /** The lookup result, for accuracy accounting. */
    RunLengthPrediction prediction;
};

/** Selectable policy kinds. */
enum class PolicyKind : std::uint8_t
{
    Baseline,
    StaticInstrumentation,
    DynamicInstrumentation,
    HardwarePredictor,
};

/** Short display name ("base", "SI", "DI", "HI"). */
const char *policyShortName(PolicyKind kind);

/**
 * Per-service mean run lengths from an off-line profiling run; the
 * input to static instrumentation.
 */
class ServiceProfile
{
  public:
    /** Record one observed invocation length. */
    void observe(ServiceId id, InstCount length);

    /** Mean observed length of a service; 0 when never seen. */
    double meanLength(ServiceId id) const;

    /** Invocation count of a service. */
    std::uint64_t invocations(ServiceId id) const;

    /** Total observations across all services. */
    std::uint64_t totalObservations() const;

  private:
    std::array<RunningStat, kNumServices> stats{};
};

/**
 * Source of the off-load threshold N for predictive policies.
 */
class ThresholdProvider
{
  public:
    virtual ~ThresholdProvider() = default;

    /** The N to compare predictions against right now. */
    virtual InstCount threshold() const = 0;
};

/** Fixed threshold (used for the Figure 4 static sweeps). */
class StaticThreshold : public ThresholdProvider
{
  public:
    explicit StaticThreshold(InstCount n)
        : value(n)
    {}

    InstCount threshold() const override { return value; }

    /** Change the fixed value (tests/sweeps). */
    void set(InstCount n) { value = n; }

  private:
    InstCount value;
};

/** Threshold delegated to the dynamic-N controller. */
class DynamicThreshold : public ThresholdProvider
{
  public:
    explicit DynamicThreshold(const ThresholdController &controller)
        : ctrl(controller)
    {}

    InstCount threshold() const override
    {
        return ctrl.currentThreshold();
    }

  private:
    const ThresholdController &ctrl;
};

/**
 * Abstract off-load decision policy.
 */
class OffloadPolicy
{
  public:
    virtual ~OffloadPolicy() = default;

    /** Decide for one privileged entry. */
    virtual OffloadDecision decide(const OsInvocation &invocation) = 0;

    /**
     * Feed back the observed run length after the sequence completed
     * (trains predictors; no-op for non-predictive policies).
     *
     * @param invocation The invocation that completed.
     * @param decision The decision decide() returned for it.
     * @param actual_length Observed length, with interrupt extension.
     */
    virtual void observe(const OsInvocation &invocation,
                         const OffloadDecision &decision,
                         InstCount actual_length) = 0;

    /** Policy kind. */
    virtual PolicyKind kind() const = 0;

    /** Display name. */
    std::string name() const { return policyShortName(kind()); }

    /**
     * Attach a trace sink; predictive policies emit one lookup event
     * per decision. Null detaches (the default: no tracing).
     *
     * @param sink Destination, or nullptr.
     * @param thread Thread id stamped on emitted events.
     */
    void
    setTraceSink(TraceSink *sink, std::uint32_t thread)
    {
        trace = sink;
        traceThread = thread;
    }

  protected:
    TraceSink *trace = nullptr;
    std::uint32_t traceThread = 0;
};

/**
 * Baseline: everything executes on the invoking core.
 */
class BaselinePolicy : public OffloadPolicy
{
  public:
    OffloadDecision decide(const OsInvocation &invocation) override;
    void observe(const OsInvocation &invocation,
                 const OffloadDecision &decision,
                 InstCount actual_length) override;
    PolicyKind kind() const override { return PolicyKind::Baseline; }
};

/**
 * SI: profile-guided static instrumentation of long-running services.
 */
class StaticInstrumentationPolicy : public OffloadPolicy
{
  public:
    /**
     * @param profile Off-line profiling result.
     * @param migration_one_way One-way migration latency; services
     *        whose mean length >= 2x this are instrumented.
     * @param instrumentation_cost Cycles per instrumented invocation
     *        (the added branch + threshold check; paper measures ~16
     *        extra instructions for even a trivial check).
     */
    StaticInstrumentationPolicy(const ServiceProfile &profile,
                                Cycle migration_one_way,
                                Cycle instrumentation_cost = 30);

    OffloadDecision decide(const OsInvocation &invocation) override;
    void observe(const OsInvocation &invocation,
                 const OffloadDecision &decision,
                 InstCount actual_length) override;
    PolicyKind kind() const override
    {
        return PolicyKind::StaticInstrumentation;
    }

    /** True when the service was selected for instrumentation. */
    bool instrumented(ServiceId id) const;

    /** Number of instrumented services. */
    unsigned instrumentedCount() const;

  private:
    std::array<bool, kNumServices> selected{};
    Cycle cost;
};

/**
 * Shared implementation of the predictor+threshold decision used by
 * both DI (software, expensive) and HI (hardware, single cycle).
 */
class PredictivePolicy : public OffloadPolicy
{
  public:
    /**
     * @param predictor Run-length predictor (owned by caller).
     * @param threshold Threshold source (owned by caller).
     * @param decision_cost Cycles charged per privileged entry.
     * @param policy_kind DI or HI.
     */
    PredictivePolicy(RunLengthPredictor &predictor,
                     const ThresholdProvider &threshold,
                     Cycle decision_cost, PolicyKind policy_kind);

    OffloadDecision decide(const OsInvocation &invocation) override;
    void observe(const OsInvocation &invocation,
                 const OffloadDecision &decision,
                 InstCount actual_length) override;
    PolicyKind kind() const override { return policyKind; }

    /** Accuracy accounting fed by observe(). */
    const PredictorStats &stats() const { return accuracy; }

    /** Mutable accuracy accounting (reset between phases). */
    PredictorStats &stats() { return accuracy; }

    /**
     * Register this policy's predictor metrics under `<prefix>.`:
     * lookup/global-fallback/table-hit counters, an observation
     * counter in exact lockstep with stats().samples() (same
     * window-trap exclusion), a lookup-confidence histogram, and a
     * predictor occupancy gauge. Call at most once, before decisions;
     * the registry must outlive this policy.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix);

  private:
    RunLengthPredictor &pred;
    const ThresholdProvider &thresh;
    Cycle cost;
    PolicyKind policyKind;
    PredictorStats accuracy;

    // Registry handles; null until registerMetrics() (metrics off).
    std::uint64_t *mLookups = nullptr;
    std::uint64_t *mGlobalFallbacks = nullptr;
    std::uint64_t *mTableHits = nullptr;
    std::uint64_t *mObservations = nullptr;
    LogHistogram *mConfidence = nullptr;
};

} // namespace oscar

#endif // OSCAR_CORE_OFFLOAD_POLICY_HH_
