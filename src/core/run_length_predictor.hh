/**
 * @file
 * Hardware OS run-length predictors (Section III-A, Figure 2).
 *
 * On every transition to privileged mode the predictor is indexed with
 * the AState — the XOR of PSTATE, g0, g1, i0 and i1 — and returns the
 * run length observed the last time that AState was seen. A 2-bit
 * saturating confidence counter per entry is incremented when the
 * entry's prediction lands within ±5 % of the actual length and
 * decremented otherwise; at confidence 0 the predictor falls back to a
 * *global* prediction, the mean of the last three observed run lengths
 * regardless of AState (the paper notes OS run lengths cluster, making
 * the global value a better guess than a cold local entry).
 *
 * Three organizations are provided:
 *  - CamPredictor: the paper's proposal, a 200-entry fully-associative
 *    CAM with LRU replacement (~2 KB of storage);
 *  - DirectMappedPredictor: the paper's tag-less 1500-entry RAM
 *    alternative (~3.3 KB), indexed by the AState's low bits;
 *  - InfinitePredictor: unbounded table, the paper's "infinite
 *    history" upper bound.
 */

#ifndef OSCAR_CORE_RUN_LENGTH_PREDICTOR_HH_
#define OSCAR_CORE_RUN_LENGTH_PREDICTOR_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/flat_hash.hh"
#include "sim/types.hh"

namespace oscar
{

/** Result of one predictor lookup. */
struct RunLengthPrediction
{
    /** Predicted run length in instructions. */
    InstCount length = 0;
    /** True when the global fallback supplied the value. */
    bool fromGlobal = false;
    /** True when the AState was found in the table. */
    bool tableHit = false;
    /**
     * The hit entry's 2-bit confidence counter (0 on a table miss).
     * Exposed for traces and the saturation property tests.
     */
    std::uint8_t confidence = 0;
};

/**
 * Absolute accuracy floor of withinTolerance(), in instructions: a
 * prediction no further than this from the actual length always counts
 * as accurate, regardless of the ±5 % relative band. Keeps confidence
 * training meaningful for zero/near-zero run lengths, where a relative
 * tolerance degenerates to exact-match.
 */
inline constexpr double kToleranceFloorInstructions = 2.0;

/**
 * True when a prediction lands within ±5 % of the actual length
 * (symmetric: the band is taken around the larger of the two values),
 * or within kToleranceFloorInstructions for near-zero runs.
 */
bool withinTolerance(InstCount predicted, InstCount actual);

/**
 * Mean of the last three observed run lengths (any AState).
 */
class GlobalRunLengthHistory
{
  public:
    /** Record an observed run length. */
    void observe(InstCount length);

    /** Current global prediction; 0 before any observation. */
    InstCount prediction() const;

    /** Number of observations recorded (saturates at capacity). */
    unsigned depth() const { return filled; }

  private:
    static constexpr unsigned kDepth = 3;
    InstCount ring[kDepth] = {0, 0, 0};
    /** Rolling sum of the live ring entries, so prediction() is O(1). */
    InstCount sum = 0;
    unsigned cursor = 0;
    unsigned filled = 0;
};

/**
 * Abstract run-length predictor.
 */
class RunLengthPredictor
{
  public:
    virtual ~RunLengthPredictor() = default;

    /** Predict the run length of the invocation with this AState. */
    virtual RunLengthPrediction predict(std::uint64_t astate) = 0;

    /** Train with the observed run length of a completed invocation. */
    virtual void update(std::uint64_t astate, InstCount actual) = 0;

    /** Hardware storage the organization requires, in bits. */
    virtual std::uint64_t storageBits() const = 0;

    /** Organization name for reports. */
    virtual std::string name() const = 0;

    /** Number of live (trained) entries; an occupancy gauge. */
    virtual std::size_t occupancy() const = 0;

    /**
     * Duplicate this predictor, trained state included, for system
     * snapshots. The clone predicts identically to the original on any
     * subsequent AState stream.
     */
    virtual std::unique_ptr<RunLengthPredictor> clone() const = 0;

    /** The shared last-three-lengths global history. */
    const GlobalRunLengthHistory &global() const { return globalHistory; }

  protected:
    /** Feed the global history; called by every update(). */
    void observeGlobal(InstCount length) { globalHistory.observe(length); }

    GlobalRunLengthHistory globalHistory;
};

/** Saturating 2-bit confidence helpers. */
namespace confidence
{
inline constexpr std::uint8_t kMax = 3;

/** Increment with saturation. */
constexpr std::uint8_t
up(std::uint8_t c)
{
    return c >= kMax ? kMax : static_cast<std::uint8_t>(c + 1);
}

/** Decrement with saturation. */
constexpr std::uint8_t
down(std::uint8_t c)
{
    return c == 0 ? 0 : static_cast<std::uint8_t>(c - 1);
}
} // namespace confidence

/**
 * The paper's 200-entry fully-associative CAM organization.
 *
 * The *modelled hardware* is a fully-associative CAM searched in one
 * cycle; the *simulation* of it used to pay an O(entries) linear scan
 * per lookup, twice per invocation. This implementation keeps the
 * exact fully-associative + LRU semantics but makes every operation
 * O(1):
 *
 *  - a flat hash index maps AState -> entry slot (find);
 *  - entries carry intrusive prev/next links forming a doubly-linked
 *    LRU list (head = most recent); a hit unlinks and re-links at the
 *    head, eviction pops the tail;
 *  - a live-entry counter doubles as the bump allocator for cold
 *    slots, making occupancy() O(1) as well.
 *
 * Because LRU timestamps were unique in the old implementation, the
 * list order is exactly the old lastUse order and the eviction victim
 * is identical — the golden traces are byte-for-byte unchanged, and
 * the randomized differential test in test_predictor_differential.cc
 * pits this implementation against the old linear scan directly.
 */
class CamPredictor : public RunLengthPredictor
{
  public:
    /** @param entries CAM capacity (paper: 200). */
    explicit CamPredictor(std::size_t entries = 200);

    RunLengthPrediction predict(std::uint64_t astate) override;
    void update(std::uint64_t astate, InstCount actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "cam"; }

    /** Number of live entries; O(1). */
    std::size_t occupancy() const override { return liveCount; }

    std::unique_ptr<RunLengthPredictor>
    clone() const override
    {
        return std::make_unique<CamPredictor>(*this);
    }

    /** Capacity. */
    std::size_t capacity() const { return table.size(); }

  private:
    /** Sentinel slot id terminating the LRU list. */
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    struct Entry
    {
        std::uint64_t astate = 0;
        InstCount length = 0;
        std::uint8_t conf = 0;
        /** Intrusive LRU list links (slot indices). */
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    /** Detach a live slot from the LRU list. */
    void unlink(std::uint32_t slot);

    /** Make a detached slot the most recently used. */
    void pushFront(std::uint32_t slot);

    /** Move a live slot to the MRU position. */
    void touch(std::uint32_t slot);

    std::vector<Entry> table;
    /** AState -> slot index of every live entry. */
    FlatHashMap<std::uint32_t> index;
    std::uint32_t lruHead = kNil;
    std::uint32_t lruTail = kNil;
    /** Live entries; slots [0, liveCount) are allocated in order. */
    std::uint32_t liveCount = 0;
};

/**
 * The paper's tag-less direct-mapped RAM organization (1500 entries).
 *
 * Being tag-less, distinct AStates that share low-order bits alias
 * into the same entry; the confidence counter limits the damage.
 */
class DirectMappedPredictor : public RunLengthPredictor
{
  public:
    /** @param entries Table size (paper: 1500). */
    explicit DirectMappedPredictor(std::size_t entries = 1500);

    RunLengthPrediction predict(std::uint64_t astate) override;
    void update(std::uint64_t astate, InstCount actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "direct-mapped"; }

    /** Number of valid entries; O(1) via the running count. */
    std::size_t occupancy() const override { return validCount; }

    std::unique_ptr<RunLengthPredictor>
    clone() const override
    {
        return std::make_unique<DirectMappedPredictor>(*this);
    }

  private:
    struct Entry
    {
        InstCount length = 0;
        std::uint8_t conf = 0;
        bool valid = false;
    };

    std::size_t index(std::uint64_t astate) const;

    std::vector<Entry> table;
    /** Entries with valid == true. */
    std::size_t validCount = 0;
};

/**
 * Unbounded table: the "infinite history" reference point.
 */
class InfinitePredictor : public RunLengthPredictor
{
  public:
    RunLengthPrediction predict(std::uint64_t astate) override;
    void update(std::uint64_t astate, InstCount actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override { return "infinite"; }

    /** Number of distinct AStates seen. */
    std::size_t occupancy() const override { return table.size(); }

    std::unique_ptr<RunLengthPredictor>
    clone() const override
    {
        return std::make_unique<InfinitePredictor>(*this);
    }

  private:
    struct Entry
    {
        InstCount length = 0;
        std::uint8_t conf = 0;
    };

    std::unordered_map<std::uint64_t, Entry> table;
};

/** Predictor organizations selectable from configuration. */
enum class PredictorKind : std::uint8_t
{
    Cam,
    DirectMapped,
    Infinite,
};

/** Factory for the configured organization. */
std::unique_ptr<RunLengthPredictor> makePredictor(PredictorKind kind);

} // namespace oscar

#endif // OSCAR_CORE_RUN_LENGTH_PREDICTOR_HH_
