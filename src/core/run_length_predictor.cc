/**
 * @file
 * Implementation of the run-length predictors.
 */

#include "core/run_length_predictor.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace oscar
{

bool
withinTolerance(InstCount predicted, InstCount actual)
{
    // Symmetric ±5 % band around the larger of the two values, with an
    // absolute floor for short runs: at actual == 0 a pure relative
    // tolerance collapses to exact-match (and is asymmetric below ~20
    // instructions), so confidence counters thrash on the short
    // invocations trap-heavy workloads produce. Within the floor any
    // near-miss counts as accurate.
    const double diff = std::abs(static_cast<double>(predicted) -
                                 static_cast<double>(actual));
    const double base = static_cast<double>(std::max(predicted, actual));
    return diff <= std::max(kToleranceFloorInstructions, 0.05 * base);
}

void
GlobalRunLengthHistory::observe(InstCount length)
{
    if (filled == kDepth)
        sum -= ring[cursor];
    else
        ++filled;
    sum += length;
    ring[cursor] = length;
    cursor = (cursor + 1) % kDepth;
}

InstCount
GlobalRunLengthHistory::prediction() const
{
    if (filled == 0)
        return 0;
    return sum / filled;
}

// ---------------------------------------------------------------------
// CamPredictor

CamPredictor::CamPredictor(std::size_t entries)
    : table(entries)
{
    oscar_assert(entries > 0);
    oscar_assert(entries < kNil);
    // Sized up front so the hot path never rehashes (or allocates).
    index.reserve(entries);
}

void
CamPredictor::unlink(std::uint32_t slot)
{
    Entry &entry = table[slot];
    if (entry.prev != kNil)
        table[entry.prev].next = entry.next;
    else
        lruHead = entry.next;
    if (entry.next != kNil)
        table[entry.next].prev = entry.prev;
    else
        lruTail = entry.prev;
}

void
CamPredictor::pushFront(std::uint32_t slot)
{
    Entry &entry = table[slot];
    entry.prev = kNil;
    entry.next = lruHead;
    if (lruHead != kNil)
        table[lruHead].prev = slot;
    lruHead = slot;
    if (lruTail == kNil)
        lruTail = slot;
}

void
CamPredictor::touch(std::uint32_t slot)
{
    if (lruHead == slot)
        return;
    unlink(slot);
    pushFront(slot);
}

RunLengthPrediction
CamPredictor::predict(std::uint64_t astate)
{
    RunLengthPrediction pred;
    const std::uint32_t *slot = index.find(astate);
    if (slot == nullptr) {
        pred.length = globalHistory.prediction();
        pred.fromGlobal = true;
        return pred;
    }
    touch(*slot);
    const Entry &entry = table[*slot];
    pred.tableHit = true;
    pred.confidence = entry.conf;
    if (entry.conf == 0) {
        // Low-confidence local entries lose to the global prediction.
        pred.length = globalHistory.prediction();
        pred.fromGlobal = true;
    } else {
        pred.length = entry.length;
    }
    return pred;
}

void
CamPredictor::update(std::uint64_t astate, InstCount actual)
{
    observeGlobal(actual);
    if (const std::uint32_t *hit = index.find(astate)) {
        Entry &entry = table[*hit];
        // Confidence trains on what this entry *would have* predicted.
        if (withinTolerance(entry.length, actual))
            entry.conf = confidence::up(entry.conf);
        else
            entry.conf = confidence::down(entry.conf);
        entry.length = actual;
        touch(*hit);
        return;
    }

    // Allocate a cold slot, or evict the LRU tail when full.
    std::uint32_t slot;
    if (liveCount < table.size()) {
        slot = liveCount++;
    } else {
        slot = lruTail;
        unlink(slot);
        index.erase(table[slot].astate);
    }
    Entry &entry = table[slot];
    entry.astate = astate;
    entry.length = actual;
    entry.conf = 0;
    pushFront(slot);
    index.insert(astate, slot);
}

std::uint64_t
CamPredictor::storageBits() const
{
    // 64-bit AState tag + 16-bit length + 2-bit confidence per entry;
    // the paper quotes ~2 KB for 200 entries. The hash index and LRU
    // links are simulation artifacts — the modelled hardware is a
    // single-cycle associative search — so they carry no storage cost.
    return table.size() * (64 + 16 + 2);
}

// ---------------------------------------------------------------------
// DirectMappedPredictor

DirectMappedPredictor::DirectMappedPredictor(std::size_t entries)
    : table(entries)
{
    oscar_assert(entries > 0);
}

std::size_t
DirectMappedPredictor::index(std::uint64_t astate) const
{
    // The paper indexes with the least-significant AState bits; for a
    // non-power-of-two table size that generalizes to a modulo.
    return static_cast<std::size_t>(astate % table.size());
}

RunLengthPrediction
DirectMappedPredictor::predict(std::uint64_t astate)
{
    RunLengthPrediction pred;
    const Entry &entry = table[index(astate)];
    if (entry.valid)
        pred.confidence = entry.conf;
    if (!entry.valid || entry.conf == 0) {
        pred.length = globalHistory.prediction();
        pred.fromGlobal = true;
        pred.tableHit = entry.valid;
        return pred;
    }
    pred.length = entry.length;
    pred.tableHit = true;
    return pred;
}

void
DirectMappedPredictor::update(std::uint64_t astate, InstCount actual)
{
    observeGlobal(actual);
    Entry &entry = table[index(astate)];
    if (entry.valid) {
        if (withinTolerance(entry.length, actual))
            entry.conf = confidence::up(entry.conf);
        else
            entry.conf = confidence::down(entry.conf);
    } else {
        entry.valid = true;
        ++validCount;
        entry.conf = 0;
    }
    entry.length = actual;
}

std::uint64_t
DirectMappedPredictor::storageBits() const
{
    // Tag-less: 16-bit length + 2-bit confidence per entry; the paper
    // quotes 3.3 KB for 1500 entries.
    return table.size() * (16 + 2);
}

// ---------------------------------------------------------------------
// InfinitePredictor

RunLengthPrediction
InfinitePredictor::predict(std::uint64_t astate)
{
    RunLengthPrediction pred;
    auto it = table.find(astate);
    if (it == table.end()) {
        pred.length = globalHistory.prediction();
        pred.fromGlobal = true;
        return pred;
    }
    pred.tableHit = true;
    pred.confidence = it->second.conf;
    if (it->second.conf == 0) {
        pred.length = globalHistory.prediction();
        pred.fromGlobal = true;
    } else {
        pred.length = it->second.length;
    }
    return pred;
}

void
InfinitePredictor::update(std::uint64_t astate, InstCount actual)
{
    observeGlobal(actual);
    auto it = table.find(astate);
    if (it != table.end()) {
        if (withinTolerance(it->second.length, actual))
            it->second.conf = confidence::up(it->second.conf);
        else
            it->second.conf = confidence::down(it->second.conf);
        it->second.length = actual;
        return;
    }
    table.emplace(astate, Entry{actual, 0});
}

std::uint64_t
InfinitePredictor::storageBits() const
{
    return table.size() * (64 + 16 + 2);
}

std::unique_ptr<RunLengthPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Cam:
        return std::make_unique<CamPredictor>();
      case PredictorKind::DirectMapped:
        return std::make_unique<DirectMappedPredictor>();
      case PredictorKind::Infinite:
        return std::make_unique<InfinitePredictor>();
    }
    oscar_panic("unknown predictor kind");
}

} // namespace oscar
