/**
 * @file
 * Implementation of the off-load decision policies.
 */

#include "core/offload_policy.hh"

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"

namespace oscar
{

const char *
policyShortName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline: return "base";
      case PolicyKind::StaticInstrumentation: return "SI";
      case PolicyKind::DynamicInstrumentation: return "DI";
      case PolicyKind::HardwarePredictor: return "HI";
    }
    return "?";
}

// ---------------------------------------------------------------------
// ServiceProfile

void
ServiceProfile::observe(ServiceId id, InstCount length)
{
    const auto index = static_cast<std::size_t>(id);
    oscar_assert(index < stats.size());
    stats[index].add(static_cast<double>(length));
}

double
ServiceProfile::meanLength(ServiceId id) const
{
    const auto index = static_cast<std::size_t>(id);
    oscar_assert(index < stats.size());
    return stats[index].mean();
}

std::uint64_t
ServiceProfile::invocations(ServiceId id) const
{
    const auto index = static_cast<std::size_t>(id);
    oscar_assert(index < stats.size());
    return stats[index].count();
}

std::uint64_t
ServiceProfile::totalObservations() const
{
    std::uint64_t total = 0;
    for (const RunningStat &s : stats)
        total += s.count();
    return total;
}

// ---------------------------------------------------------------------
// BaselinePolicy

OffloadDecision
BaselinePolicy::decide(const OsInvocation &invocation)
{
    (void)invocation;
    return OffloadDecision{};
}

void
BaselinePolicy::observe(const OsInvocation &invocation,
                        const OffloadDecision &decision,
                        InstCount actual_length)
{
    (void)invocation;
    (void)decision;
    (void)actual_length;
}

// ---------------------------------------------------------------------
// StaticInstrumentationPolicy

StaticInstrumentationPolicy::StaticInstrumentationPolicy(
    const ServiceProfile &profile, Cycle migration_one_way,
    Cycle instrumentation_cost)
    : cost(instrumentation_cost)
{
    // Instrument the services whose profiled mean run length is at
    // least twice the off-loading (migration) latency.
    const double cutoff = 2.0 * static_cast<double>(migration_one_way);
    for (std::size_t i = 0; i < kNumServices; ++i) {
        const auto id = static_cast<ServiceId>(i);
        selected[i] = profile.invocations(id) > 0 &&
                      profile.meanLength(id) >= cutoff;
    }
}

OffloadDecision
StaticInstrumentationPolicy::decide(const OsInvocation &invocation)
{
    oscar_assert(invocation.service != nullptr);
    OffloadDecision decision;
    const auto index = static_cast<std::size_t>(invocation.service->id);
    if (selected[index]) {
        // Only instrumented entry points pay the software overhead;
        // their embedded static check always chooses to off-load.
        decision.offload = true;
        decision.cost = cost;
    }
    return decision;
}

void
StaticInstrumentationPolicy::observe(const OsInvocation &invocation,
                                     const OffloadDecision &decision,
                                     InstCount actual_length)
{
    (void)invocation;
    (void)decision;
    (void)actual_length;
}

bool
StaticInstrumentationPolicy::instrumented(ServiceId id) const
{
    return selected[static_cast<std::size_t>(id)];
}

unsigned
StaticInstrumentationPolicy::instrumentedCount() const
{
    unsigned count = 0;
    for (bool s : selected) {
        if (s)
            ++count;
    }
    return count;
}

// ---------------------------------------------------------------------
// PredictivePolicy

PredictivePolicy::PredictivePolicy(RunLengthPredictor &predictor,
                                   const ThresholdProvider &threshold,
                                   Cycle decision_cost,
                                   PolicyKind policy_kind)
    : pred(predictor), thresh(threshold), cost(decision_cost),
      policyKind(policy_kind)
{
    oscar_assert(policy_kind == PolicyKind::DynamicInstrumentation ||
                 policy_kind == PolicyKind::HardwarePredictor);
}

void
PredictivePolicy::registerMetrics(MetricRegistry &registry,
                                  const std::string &prefix)
{
    oscar_assert(mLookups == nullptr);
    mLookups = registry.counter(prefix + ".lookups");
    mGlobalFallbacks = registry.counter(prefix + ".global_fallbacks");
    mTableHits = registry.counter(prefix + ".table_hits");
    mObservations = registry.counter(prefix + ".observations");
    mConfidence = registry.histogram(prefix + ".confidence", 4);
    RunLengthPredictor *p = &pred;
    registry.gauge(prefix + ".occupancy", [p] {
        return static_cast<double>(p->occupancy());
    });
}

OffloadDecision
PredictivePolicy::decide(const OsInvocation &invocation)
{
    OffloadDecision decision;
    decision.prediction = pred.predict(invocation.astate());
    decision.predictedLength = decision.prediction.length;
    decision.predictorUsed = true;
    decision.cost = cost;
    const InstCount n = thresh.threshold();
    decision.offload = decision.predictedLength > n;
    if (mLookups != nullptr) {
        ++*mLookups;
        *mGlobalFallbacks += decision.prediction.fromGlobal ? 1 : 0;
        *mTableHits += decision.prediction.tableHit ? 1 : 0;
        mConfidence->add(decision.prediction.confidence);
    }
    if (trace != nullptr) {
        TraceEvent event;
        event.kind = TraceEventKind::PredictorLookup;
        event.thread = traceThread;
        event.astate = invocation.astate();
        event.predicted = decision.predictedLength;
        event.confidence = decision.prediction.confidence;
        event.fromGlobal = decision.prediction.fromGlobal;
        event.tableHit = decision.prediction.tableHit;
        event.threshold = n;
        trace->emit(event);
    }
    return decision;
}

void
PredictivePolicy::observe(const OsInvocation &invocation,
                          const OffloadDecision &decision,
                          InstCount actual_length)
{
    pred.update(invocation.astate(), actual_length);
    if (decision.predictorUsed) {
        const bool counted = accuracy.record(decision.prediction,
                                             actual_length,
                                             invocation.isWindowTrap());
        // Lockstep with samples(): only count what record() counted.
        if (counted && mObservations != nullptr)
            ++*mObservations;
    }
}

} // namespace oscar
