/**
 * @file
 * Dynamic estimation of the off-load trigger threshold N
 * (Section III-B).
 *
 * The mechanism is epoch based and runs in software at coarse
 * granularity. Bootstrapping: N starts at 1,000 when more than 10 % of
 * instructions retire in privileged mode, else at 10,000. Each
 * sampling round measures the averaged L2 hit rate of the user and OS
 * cores for the current N and for its two ladder neighbours over
 * 25 M-instruction epochs; a neighbour that improves the hit rate by
 * at least one percentage point becomes the new N. Between sampling
 * rounds the system runs undisturbed for 100 M instructions, doubling
 * (up to a cap) while the current N keeps winning and dropping back to
 * 100 M as soon as it does not.
 */

#ifndef OSCAR_CORE_THRESHOLD_CONTROLLER_HH_
#define OSCAR_CORE_THRESHOLD_CONTROLLER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace oscar
{

class MetricRegistry;
class TraceSink;

/** Tuning knobs of the dynamic-N mechanism (paper defaults). */
struct ThresholdConfig
{
    /** Candidate N ladder; must be strictly increasing. */
    std::vector<InstCount> ladder = {0, 100, 500, 1000, 5000, 10000, 50000};
    /** Initial N when the privileged fraction exceeds the boundary. */
    InstCount initialHighPriv = 1000;
    /** Initial N otherwise. */
    InstCount initialLowPriv = 10000;
    /** Privileged-instruction fraction separating the two starts. */
    double privFractionBoundary = 0.10;
    /** Minimum feedback improvement to switch N (1 % = 0.01). */
    double improvementDelta = 0.01;
    /**
     * Interpret improvementDelta relatively (winner must beat the
     * incumbent by delta * incumbent) instead of additively. Additive
     * matches the paper's "1 % better L2 hit rate"; relative suits
     * IPC-valued feedback.
     */
    bool relativeImprovement = false;
    /** Instructions per sampling epoch (paper: 25 M). */
    InstCount sampleEpoch = 25'000'000;
    /** Instructions per undisturbed run epoch (paper: 100 M). */
    InstCount runEpoch = 100'000'000;
    /** Cap on the doubled run epoch (paper doubles 100 M to 200 M). */
    InstCount maxRunEpoch = 400'000'000;
    /**
     * Scale factor applied to all epoch lengths so experiments finish
     * quickly; the control logic is unchanged.
     */
    double epochScale = 1.0;
};

/**
 * Epoch-driven threshold controller.
 */
class ThresholdController
{
  public:
    /** Controller phase, exposed for tests and traces. */
    enum class Phase : std::uint8_t
    {
        Idle,          ///< begin() not yet called
        SampleCurrent, ///< measuring the incumbent N
        SampleLower,   ///< measuring the ladder neighbour below
        SampleUpper,   ///< measuring the ladder neighbour above
        Run,           ///< running undisturbed with the winner
    };

    explicit ThresholdController(const ThresholdConfig &config);

    /**
     * Start the mechanism once the privileged fraction is known
     * (measured during warmup).
     */
    void begin(double priv_fraction);

    /** The N the off-load decision should use right now. */
    InstCount currentThreshold() const;

    /** Instructions until the next epoch boundary. */
    InstCount epochLength() const;

    /**
     * Advance the state machine at an epoch boundary.
     *
     * @param l2_hit_rate Averaged user+OS L2 hit rate over the epoch
     *        that just ended.
     */
    void onEpochEnd(double l2_hit_rate);

    /** Current phase. */
    Phase phase() const { return currentPhase; }

    /** Number of times N changed after a sampling round. */
    std::uint64_t switches() const { return switchCount; }

    /** Number of completed sampling rounds. */
    std::uint64_t rounds() const { return roundCount; }

    /** Number of epoch-end verdicts processed (onEpochEnd calls). */
    std::uint64_t epochs() const { return epochCount; }

    /** Number of sampling-state (phase) transitions, begin() included. */
    std::uint64_t transitions() const { return transitionCount; }

    /** Phase name for traces. */
    static std::string phaseName(Phase phase);

    /**
     * Attach a trace sink; the controller emits a threshold-change
     * event from begin() and whenever a sampling round moves N.
     */
    void setTraceSink(TraceSink *sink) { trace = sink; }

    /**
     * Register controller metrics under `controller.`: the N in force
     * and the phase as gauges, plus epoch/round/switch/transition
     * counters. Call at most once; the registry must outlive this
     * controller.
     */
    void registerMetrics(MetricRegistry &registry);

  private:
    /** Index of the incumbent N in the ladder. */
    std::size_t ladderIndex() const { return currentIndex; }

    /** Scaled epoch lengths. */
    InstCount scaledSample() const;
    InstCount scaledRunBase() const;
    InstCount scaledRunCap() const;

    /** Decide the winner after all samples of a round are in. */
    void concludeRound();

    /** Change phase, counting the transition. */
    void setPhase(Phase next);

    ThresholdConfig cfg;
    Phase currentPhase = Phase::Idle;
    std::size_t currentIndex = 0;
    InstCount runLength = 0;

    double sampleCurrentRate = 0.0;
    double sampleLowerRate = -1.0;
    double sampleUpperRate = -1.0;
    bool lowerExists = false;
    bool upperExists = false;

    std::uint64_t switchCount = 0;
    std::uint64_t roundCount = 0;
    std::uint64_t epochCount = 0;
    std::uint64_t transitionCount = 0;

    TraceSink *trace = nullptr;
};

} // namespace oscar

#endif // OSCAR_CORE_THRESHOLD_CONTROLLER_HH_
