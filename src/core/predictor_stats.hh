/**
 * @file
 * Accuracy accounting for the run-length predictor.
 *
 * Tracks the two accuracy views the paper reports:
 *  - value accuracy: exact predictions and predictions within ±5 %
 *    (Section III-A quotes 73.6 % exact + 24.8 % within tolerance);
 *  - binary accuracy per trigger threshold N: was "predicted > N" the
 *    same as "actual > N"? (Figure 3).
 *
 * Register-window spill/fill traps can be excluded, matching the
 * paper's de-skewed figures.
 */

#ifndef OSCAR_CORE_PREDICTOR_STATS_HH_
#define OSCAR_CORE_PREDICTOR_STATS_HH_

#include <cstdint>
#include <vector>

#include "core/run_length_predictor.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace oscar
{

/**
 * Accumulates prediction outcomes.
 */
class PredictorStats
{
  public:
    /** The Figure 3 threshold sweep, in instructions. */
    static const std::vector<InstCount> &defaultThresholds();

    /**
     * @param thresholds Ns for binary accuracy tracking.
     * @param exclude_window_traps Skip spill/fill outcomes entirely.
     */
    explicit PredictorStats(
        std::vector<InstCount> thresholds = defaultThresholds(),
        bool exclude_window_traps = true);

    /**
     * Record one completed invocation.
     *
     * @param prediction What the predictor said beforehand.
     * @param actual Observed run length (with interrupt extension).
     * @param is_window_trap True for spill/fill traps.
     * @return True when the outcome was counted, false when the
     *         window-trap exclusion skipped it — so shadow counters
     *         (registry metrics) can stay in exact lockstep with
     *         samples().
     */
    bool record(const RunLengthPrediction &prediction, InstCount actual,
                bool is_window_trap);

    /** Invocations counted. */
    std::uint64_t samples() const { return total; }

    /** Fraction predicted exactly. */
    double exactRate() const;

    /** Fraction within ±5 % but not exact. */
    double withinToleranceRate() const;

    /** Fraction neither exact nor within tolerance. */
    double missRate() const;

    /** Fraction of predictions served by the global fallback. */
    double globalFallbackRate() const;

    /**
     * Fraction of underestimating mispredictions among all
     * out-of-tolerance predictions (the paper observes mispredictions
     * "tend to underestimate OS run-lengths").
     */
    double underestimateShare() const;

    /** Thresholds tracked for binary accuracy. */
    const std::vector<InstCount> &thresholds() const { return ns; }

    /** Binary accuracy for the i-th tracked threshold. */
    double binaryAccuracy(std::size_t i) const;

    /** Binary accuracy for a specific N (must be tracked). */
    double binaryAccuracyFor(InstCount n) const;

    /** Reset all counters. */
    void reset();

    /**
     * Fold another tracker into this one (used to aggregate per-core
     * predictors); both must track the same thresholds.
     */
    void merge(const PredictorStats &other);

  private:
    std::vector<InstCount> ns;
    std::vector<RatioStat> binary;
    bool excludeWindowTraps;
    std::uint64_t total = 0;
    std::uint64_t exact = 0;
    std::uint64_t within = 0;
    std::uint64_t fromGlobal = 0;
    std::uint64_t underestimates = 0;
    std::uint64_t overestimates = 0;
};

} // namespace oscar

#endif // OSCAR_CORE_PREDICTOR_STATS_HH_
