/**
 * @file
 * Implementation of predictor accuracy accounting.
 */

#include "core/predictor_stats.hh"

#include "sim/logging.hh"

namespace oscar
{

const std::vector<InstCount> &
PredictorStats::defaultThresholds()
{
    static const std::vector<InstCount> kDefault = {25,   100,  500,
                                                    1000, 5000, 10000};
    return kDefault;
}

PredictorStats::PredictorStats(std::vector<InstCount> thresholds,
                               bool exclude_window_traps)
    : ns(std::move(thresholds)), binary(ns.size()),
      excludeWindowTraps(exclude_window_traps)
{
}

bool
PredictorStats::record(const RunLengthPrediction &prediction,
                       InstCount actual, bool is_window_trap)
{
    if (excludeWindowTraps && is_window_trap)
        return false;
    ++total;
    if (prediction.fromGlobal)
        ++fromGlobal;
    if (prediction.length == actual) {
        ++exact;
    } else if (withinTolerance(prediction.length, actual)) {
        ++within;
    } else if (prediction.length < actual) {
        ++underestimates;
    } else {
        ++overestimates;
    }
    for (std::size_t i = 0; i < ns.size(); ++i) {
        const bool predicted_over = prediction.length > ns[i];
        const bool actually_over = actual > ns[i];
        binary[i].add(predicted_over == actually_over);
    }
    return true;
}

double
PredictorStats::exactRate() const
{
    return total ? static_cast<double>(exact) / total : 0.0;
}

double
PredictorStats::withinToleranceRate() const
{
    return total ? static_cast<double>(within) / total : 0.0;
}

double
PredictorStats::missRate() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(total - exact - within) / total;
}

double
PredictorStats::globalFallbackRate() const
{
    return total ? static_cast<double>(fromGlobal) / total : 0.0;
}

double
PredictorStats::underestimateShare() const
{
    const std::uint64_t misses = underestimates + overestimates;
    if (misses == 0)
        return 0.0;
    return static_cast<double>(underestimates) / misses;
}

double
PredictorStats::binaryAccuracy(std::size_t i) const
{
    oscar_assert(i < binary.size());
    return binary[i].ratio();
}

double
PredictorStats::binaryAccuracyFor(InstCount n) const
{
    for (std::size_t i = 0; i < ns.size(); ++i) {
        if (ns[i] == n)
            return binary[i].ratio();
    }
    oscar_panic("threshold %llu is not tracked",
                static_cast<unsigned long long>(n));
}

void
PredictorStats::merge(const PredictorStats &other)
{
    oscar_assert(ns == other.ns);
    total += other.total;
    exact += other.exact;
    within += other.within;
    fromGlobal += other.fromGlobal;
    underestimates += other.underestimates;
    overestimates += other.overestimates;
    for (std::size_t i = 0; i < binary.size(); ++i)
        binary[i].addMany(other.binary[i].hits(), other.binary[i].total());
}

void
PredictorStats::reset()
{
    for (RatioStat &b : binary)
        b.reset();
    total = exact = within = fromGlobal = 0;
    underestimates = overestimates = 0;
}

} // namespace oscar
