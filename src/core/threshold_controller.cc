/**
 * @file
 * Implementation of the dynamic-N controller.
 */

#include "core/threshold_controller.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"

namespace oscar
{

namespace
{

/** Emit one N-change record (also used for the initial N). */
void
emitThresholdChange(TraceSink *trace, InstCount before, InstCount after,
                    std::uint64_t round)
{
    if (trace == nullptr)
        return;
    TraceEvent event;
    event.kind = TraceEventKind::ThresholdChange;
    event.thresholdBefore = before;
    event.threshold = after;
    event.depth = round;
    trace->emit(event);
}

} // namespace

ThresholdController::ThresholdController(const ThresholdConfig &config)
    : cfg(config)
{
    if (cfg.ladder.empty())
        oscar_fatal("threshold ladder must not be empty");
    if (!std::is_sorted(cfg.ladder.begin(), cfg.ladder.end()) ||
        std::adjacent_find(cfg.ladder.begin(), cfg.ladder.end()) !=
            cfg.ladder.end()) {
        oscar_fatal("threshold ladder must be strictly increasing");
    }
    if (cfg.epochScale <= 0.0)
        oscar_fatal("epochScale must be positive");
}

InstCount
ThresholdController::scaledSample() const
{
    return std::max<InstCount>(
        1, static_cast<InstCount>(cfg.epochScale *
                                  static_cast<double>(cfg.sampleEpoch)));
}

InstCount
ThresholdController::scaledRunBase() const
{
    return std::max<InstCount>(
        1, static_cast<InstCount>(cfg.epochScale *
                                  static_cast<double>(cfg.runEpoch)));
}

InstCount
ThresholdController::scaledRunCap() const
{
    return std::max<InstCount>(
        1, static_cast<InstCount>(cfg.epochScale *
                                  static_cast<double>(cfg.maxRunEpoch)));
}

void
ThresholdController::setPhase(Phase next)
{
    if (next != currentPhase)
        ++transitionCount;
    currentPhase = next;
}

void
ThresholdController::registerMetrics(MetricRegistry &registry)
{
    // currentThreshold() is safe in every phase, Idle included.
    registry.gauge("controller.n", [this] {
        return static_cast<double>(currentThreshold());
    });
    registry.gauge("controller.phase", [this] {
        return static_cast<double>(currentPhase);
    });
    registry.counterFn("controller.epochs",
                       [this] { return epochCount; });
    registry.counterFn("controller.rounds",
                       [this] { return roundCount; });
    registry.counterFn("controller.switches",
                       [this] { return switchCount; });
    registry.counterFn("controller.transitions",
                       [this] { return transitionCount; });
}

void
ThresholdController::begin(double priv_fraction)
{
    const InstCount initial = priv_fraction > cfg.privFractionBoundary
                                  ? cfg.initialHighPriv
                                  : cfg.initialLowPriv;
    // Snap to the nearest ladder entry at or below the initial value.
    currentIndex = 0;
    for (std::size_t i = 0; i < cfg.ladder.size(); ++i) {
        if (cfg.ladder[i] <= initial)
            currentIndex = i;
    }
    runLength = scaledRunBase();
    // Clear any sampling state a previous round left behind so a
    // re-begin() cannot reach a neighbour phase with stale flags.
    sampleCurrentRate = 0.0;
    sampleLowerRate = -1.0;
    sampleUpperRate = -1.0;
    lowerExists = false;
    upperExists = false;
    setPhase(Phase::SampleCurrent);
    emitThresholdChange(trace, cfg.ladder[currentIndex],
                        cfg.ladder[currentIndex], roundCount);
}

InstCount
ThresholdController::currentThreshold() const
{
    switch (currentPhase) {
      case Phase::SampleLower:
        // The SampleLower phase is only entered when a lower neighbour
        // exists; guard against index underflow at the ladder bottom.
        oscar_assert(lowerExists && currentIndex > 0);
        return cfg.ladder[currentIndex - 1];
      case Phase::SampleUpper:
        oscar_assert(upperExists &&
                     currentIndex + 1 < cfg.ladder.size());
        return cfg.ladder[currentIndex + 1];
      case Phase::Idle:
      case Phase::SampleCurrent:
      case Phase::Run:
        oscar_assert(currentIndex < cfg.ladder.size());
        return cfg.ladder[currentIndex];
    }
    oscar_panic("bad controller phase");
}

InstCount
ThresholdController::epochLength() const
{
    switch (currentPhase) {
      case Phase::Idle:
        oscar_panic("epochLength before begin()");
      case Phase::SampleCurrent:
      case Phase::SampleLower:
      case Phase::SampleUpper:
        return scaledSample();
      case Phase::Run:
        return runLength;
    }
    oscar_panic("bad controller phase");
}

void
ThresholdController::concludeRound()
{
    ++roundCount;
    std::size_t winner = currentIndex;
    double winner_rate =
        cfg.relativeImprovement
            ? sampleCurrentRate * (1.0 + cfg.improvementDelta)
            : sampleCurrentRate + cfg.improvementDelta;
    // A neighbour must beat the incumbent by the delta; ties favour
    // the incumbent (avoids oscillation on noise). A neighbour is
    // only considered when its sample was actually taken this round.
    if (lowerExists && currentIndex > 0 &&
        sampleLowerRate >= winner_rate) {
        winner = currentIndex - 1;
        winner_rate = sampleLowerRate;
    }
    if (upperExists && currentIndex + 1 < cfg.ladder.size() &&
        sampleUpperRate >= winner_rate) {
        winner = currentIndex + 1;
    }

    if (winner != currentIndex) {
        emitThresholdChange(trace, cfg.ladder[currentIndex],
                            cfg.ladder[winner], roundCount);
        currentIndex = winner;
        ++switchCount;
        runLength = scaledRunBase();
    } else {
        // Incumbent confirmed: stretch the undisturbed run.
        runLength = std::min<InstCount>(runLength * 2, scaledRunCap());
    }
    setPhase(Phase::Run);
}

void
ThresholdController::onEpochEnd(double l2_hit_rate)
{
    if (currentPhase == Phase::Idle)
        oscar_panic("onEpochEnd before begin()");
    ++epochCount;
    switch (currentPhase) {
      case Phase::Idle:
        oscar_panic("onEpochEnd before begin()");
      case Phase::SampleCurrent:
        sampleCurrentRate = l2_hit_rate;
        lowerExists = currentIndex > 0;
        upperExists = currentIndex + 1 < cfg.ladder.size();
        sampleLowerRate = -1.0;
        sampleUpperRate = -1.0;
        if (lowerExists) {
            setPhase(Phase::SampleLower);
        } else if (upperExists) {
            setPhase(Phase::SampleUpper);
        } else {
            concludeRound();
        }
        return;
      case Phase::SampleLower:
        sampleLowerRate = l2_hit_rate;
        if (upperExists) {
            setPhase(Phase::SampleUpper);
        } else {
            concludeRound();
        }
        return;
      case Phase::SampleUpper:
        sampleUpperRate = l2_hit_rate;
        concludeRound();
        return;
      case Phase::Run:
        // The undisturbed run ended: start the next sampling round.
        setPhase(Phase::SampleCurrent);
        return;
    }
}

std::string
ThresholdController::phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Idle: return "idle";
      case Phase::SampleCurrent: return "sample-current";
      case Phase::SampleLower: return "sample-lower";
      case Phase::SampleUpper: return "sample-upper";
      case Phase::Run: return "run";
    }
    return "?";
}

} // namespace oscar
