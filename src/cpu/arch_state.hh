/**
 * @file
 * SPARC-flavoured architected state.
 *
 * The off-loading predictor hashes a handful of architected registers
 * at every transition to privileged mode (Section III-A of the paper):
 * PSTATE, the globals g0/g1, and the input-argument registers i0/i1.
 * This class models exactly the state that hash observes, plus the
 * register-window bookkeeping that generates SPARC's characteristic
 * short spill/fill traps.
 */

#ifndef OSCAR_CPU_ARCH_STATE_HH_
#define OSCAR_CPU_ARCH_STATE_HH_

#include <array>
#include <cstdint>

namespace oscar
{

/** PSTATE bit positions (subset of the SPARC V9 definition). */
namespace pstate
{
/** Interrupts enabled. */
inline constexpr std::uint64_t kIe = 1ULL << 1;
/** Privileged execution mode. */
inline constexpr std::uint64_t kPriv = 1ULL << 2;
/** Floating point unit enabled. */
inline constexpr std::uint64_t kPef = 1ULL << 4;
/** Address masking (32-bit compatibility). */
inline constexpr std::uint64_t kAm = 1ULL << 3;
} // namespace pstate

/**
 * Architected register state visible to the AState hash.
 */
class ArchState
{
  public:
    /** Number of register windows (UltraSPARC III has 8). */
    static constexpr unsigned kNumWindows = 8;

    ArchState();

    /** PSTATE register value. */
    std::uint64_t pstate() const { return pstateReg; }

    /** Set the whole PSTATE register. */
    void setPstate(std::uint64_t value) { pstateReg = value; }

    /** Enter or leave privileged mode. */
    void setPrivileged(bool priv);

    /** True when the PRIV bit is set. */
    bool privileged() const { return pstateReg & pstate::kPriv; }

    /** Enable or disable interrupt delivery. */
    void setInterruptsEnabled(bool enabled);

    /** True when the IE bit is set. */
    bool interruptsEnabled() const { return pstateReg & pstate::kIe; }

    /** Global register g0..g7. */
    std::uint64_t global(unsigned index) const;

    /** Set a global register. */
    void setGlobal(unsigned index, std::uint64_t value);

    /** Input register i0..i7 of the current window. */
    std::uint64_t input(unsigned index) const;

    /** Set an input register. */
    void setInput(unsigned index, std::uint64_t value);

    /**
     * Model a procedure call (SAVE instruction).
     *
     * @return true when the register file overflowed and a spill trap
     *         must run.
     */
    bool onCall();

    /**
     * Model a procedure return (RESTORE instruction).
     *
     * @return true when the needed window was spilled and a fill trap
     *         must run.
     */
    bool onReturn();

    /** Current call depth relative to the deepest spilled frame. */
    unsigned windowDepth() const { return depth; }

  private:
    std::uint64_t pstateReg;
    std::array<std::uint64_t, 8> globals{};
    std::array<std::uint64_t, 8> inputs{};
    /** Occupied windows between the shallowest and deepest live frame. */
    unsigned depth = 0;
};

} // namespace oscar

#endif // OSCAR_CPU_ARCH_STATE_HH_
