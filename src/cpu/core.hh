/**
 * @file
 * Per-core bookkeeping: role, cycle breakdown, and retired-instruction
 * attribution. Cores in this model are passive records — the System
 * drives execution through the event queue and charges time here.
 */

#ifndef OSCAR_CPU_CORE_HH_
#define OSCAR_CPU_CORE_HH_

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace oscar
{

/** Role a core plays in the off-loading CMP. */
enum class CoreRole : std::uint8_t
{
    User, ///< runs application threads (and the OS inline, if not off-loaded)
    Os,   ///< dedicated OS core receiving off-loaded sequences
};

/** Where a core's cycles went. */
struct CycleBreakdown
{
    /** Cycles executing user-mode instructions (incl. their stalls). */
    Cycle user = 0;
    /** Cycles executing privileged instructions (incl. their stalls). */
    Cycle os = 0;
    /** Cycles spent in off-load decision code (instrumentation cost). */
    Cycle decision = 0;
    /** Cycles spent migrating thread state between cores. */
    Cycle migration = 0;
    /** Cycles a thread spent waiting for the OS core to become free. */
    Cycle queueWait = 0;

    /** All accounted busy cycles. */
    Cycle total() const
    {
        return user + os + decision + migration + queueWait;
    }
};

/**
 * One core of the simulated CMP.
 */
class Core
{
  public:
    Core(CoreId id, CoreRole role)
        : coreId(id), coreRole(role)
    {}

    /** Core id, equal to its index in the MemorySystem. */
    CoreId id() const { return coreId; }

    /** Role. */
    CoreRole role() const { return coreRole; }

    /** Mutable cycle accounting. */
    CycleBreakdown &cycles() { return breakdown; }

    /** Cycle accounting. */
    const CycleBreakdown &cycles() const { return breakdown; }

    /** Charge retired user instructions. */
    void retireUser(InstCount n) { userInstrs += n; }

    /** Charge retired privileged instructions. */
    void retireOs(InstCount n) { osInstrs += n; }

    /** User instructions retired on this core. */
    InstCount userInstructions() const { return userInstrs; }

    /** Privileged instructions retired on this core. */
    InstCount osInstructions() const { return osInstrs; }

    /** All instructions retired on this core. */
    InstCount totalInstructions() const { return userInstrs + osInstrs; }

    /**
     * Fraction of wall-clock the core was busy.
     *
     * @param elapsed Total simulated cycles of the run.
     */
    double
    utilization(Cycle elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(breakdown.total()) /
               static_cast<double>(elapsed);
    }

    /** Reset all accounting (between warmup and measurement). */
    void
    resetStats()
    {
        breakdown = CycleBreakdown{};
        userInstrs = 0;
        osInstrs = 0;
    }

  private:
    CoreId coreId;
    CoreRole coreRole;
    CycleBreakdown breakdown;
    InstCount userInstrs = 0;
    InstCount osInstrs = 0;
};

} // namespace oscar

#endif // OSCAR_CPU_CORE_HH_
