/**
 * @file
 * Segment execution engine for in-order cores.
 *
 * The simulator never interprets real instructions; a workload or OS
 * service describes each execution segment statistically (how many
 * instructions, which working-set regions it touches, how often, and
 * with what write ratio), and this engine charges cycles for it:
 * 1 cycle per instruction plus the memory-stall cycles returned by the
 * coherent hierarchy. This matches the paper's in-order 1-IPC cores,
 * where all timing variation comes from the memory system.
 */

#ifndef OSCAR_CPU_EXEC_ENGINE_HH_
#define OSCAR_CPU_EXEC_ENGINE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"
#include "workload/address_space.hh"

namespace oscar
{

/** One weighted data target of a segment. */
struct RegionAccess
{
    AddressRegion *region = nullptr;
    /** Relative probability of a data reference hitting this region. */
    double weight = 1.0;
    /** Fraction of references to this region that are writes. */
    double writeFraction = 0.0;
    /**
     * writeFraction as a precomputed integer Bernoulli threshold —
     * decision-identical to nextBool(writeFraction), without the
     * per-reference integer-to-double conversion.
     */
    BoolThreshold writeThresh{0.0};
};

/**
 * Statistical description of an execution segment's memory behaviour.
 */
class SegmentProfile
{
  public:
    /**
     * @param code Region instruction fetches are drawn from.
     * @param instr_per_data Mean instructions between data references.
     * @param instr_per_fetch Mean instructions between I-line fetches.
     */
    SegmentProfile(AddressRegion *code, double instr_per_data,
                   double instr_per_fetch);

    /**
     * Remapping copy for system snapshots: identical sampling
     * behaviour, but every region pointer translated into the cloned
     * address space.
     */
    SegmentProfile(const SegmentProfile &other, const RegionRemap &remap);

    /** Add a weighted data target; call finalize() afterwards. */
    void addData(AddressRegion *region, double weight,
                 double write_fraction);

    /** Build the sampling table; must be called before execution. */
    void finalize();

    /** Code region. */
    AddressRegion *code() const { return codeRegion; }

    /** Mean instructions between data references. */
    double instrPerData() const { return instrPerDataAccess; }

    /** Mean instructions between I-line fetches. */
    double instrPerFetch() const { return instrPerCodeLine; }

    /** Sample a data target; finalize() must have run. */
    const RegionAccess &
    sampleData(Rng &rng) const
    {
        oscar_assert(alias != nullptr);
        return data[alias->sample(rng)];
    }

    /** True when the profile has at least one data target. */
    bool hasData() const { return !data.empty(); }

    /** True once finalize() has run (or no data was added). */
    bool finalized() const { return alias != nullptr || data.empty(); }

    /**
     * Division-free reduction for the burst-span draw, bound
     * max(1, floor(2 * instrPerData())) — the value execute() used to
     * recompute (and nextBounded used to divide by) per draw.
     */
    const FastBound &burstBound() const { return burstSpan; }

  private:
    AddressRegion *codeRegion;
    double instrPerDataAccess;
    double instrPerCodeLine;
    std::vector<RegionAccess> data;
    std::unique_ptr<AliasTable> alias;
    FastBound burstSpan;
};

/** Outcome of executing one segment. */
struct ExecResult
{
    /** Cycles the segment occupied the core. */
    Cycle cycles = 0;
    /** Data references issued. */
    std::uint64_t dataAccesses = 0;
    /** Instruction-line fetches issued. */
    std::uint64_t fetches = 0;
};

/**
 * Stateless executor: charges a segment's instructions and memory
 * references against a core's hierarchy.
 *
 * Two implementations exist. execute() is the production batched
 * kernel: it generates blocks of packed references from the RNG, then
 * runs each block through MemorySystem::accessBatch. executeReference()
 * is the original one-reference-at-a-time loop, kept verbatim as the
 * behavioural reference (the pattern reference_cache.hh /
 * reference_directory.hh established). The two are interchangeable —
 * identical ExecResult, RNG stream position, memory/directory state
 * and statistics — because reference *generation* never depends on
 * access outcomes: every RNG draw in the loop is conditioned only on
 * the profile and the regions' own generator state, so hoisting
 * generation ahead of the probes reorders nothing observable. The
 * randomized differential test in tests/test_exec_batch.cc holds the
 * two paths together.
 */
class ExecEngine
{
  public:
    /**
     * Execute a segment (batched kernel).
     *
     * @param mem Coherent hierarchy to charge references against.
     * @param core Core the segment runs on.
     * @param ctx User or OS attribution.
     * @param instructions Retired-instruction budget of the segment.
     * @param profile Memory behaviour description.
     * @param rng Deterministic stream for reference generation.
     */
    static ExecResult execute(MemorySystem &mem, CoreId core,
                              ExecContext ctx, InstCount instructions,
                              const SegmentProfile &profile, Rng &rng);

    /** Execute a segment through the scalar reference loop. */
    static ExecResult executeReference(MemorySystem &mem, CoreId core,
                                       ExecContext ctx,
                                       InstCount instructions,
                                       const SegmentProfile &profile,
                                       Rng &rng);

    /**
     * Route execute() through the scalar reference loop on this thread
     * (differential tests drive whole systems down both paths without
     * plumbing a flag through every layer). Thread-local so parallel
     * sweep workers are unaffected.
     */
    static void setReferenceMode(bool on);

    /** Current thread's reference-mode flag. */
    static bool referenceMode();
};

} // namespace oscar

#endif // OSCAR_CPU_EXEC_ENGINE_HH_
