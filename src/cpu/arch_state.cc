/**
 * @file
 * Implementation of the architected-state model.
 */

#include "cpu/arch_state.hh"

#include "sim/logging.hh"

namespace oscar
{

ArchState::ArchState()
    : pstateReg(pstate::kIe | pstate::kPef)
{
}

void
ArchState::setPrivileged(bool priv)
{
    if (priv)
        pstateReg |= pstate::kPriv;
    else
        pstateReg &= ~pstate::kPriv;
}

void
ArchState::setInterruptsEnabled(bool enabled)
{
    if (enabled)
        pstateReg |= pstate::kIe;
    else
        pstateReg &= ~pstate::kIe;
}

std::uint64_t
ArchState::global(unsigned index) const
{
    oscar_assert(index < globals.size());
    // g0 is architecturally hardwired to zero on SPARC; the paper
    // nonetheless lists it among the hashed registers, so we model it
    // as a real register the OS-entry stub can populate.
    return globals[index];
}

void
ArchState::setGlobal(unsigned index, std::uint64_t value)
{
    oscar_assert(index < globals.size());
    globals[index] = value;
}

std::uint64_t
ArchState::input(unsigned index) const
{
    oscar_assert(index < inputs.size());
    return inputs[index];
}

void
ArchState::setInput(unsigned index, std::uint64_t value)
{
    oscar_assert(index < inputs.size());
    inputs[index] = value;
}

bool
ArchState::onCall()
{
    if (depth + 1 >= kNumWindows) {
        // The register file is full: the deepest window is spilled to
        // the memory stack and reused for the new frame.
        return true;
    }
    ++depth;
    return false;
}

bool
ArchState::onReturn()
{
    if (depth == 0) {
        // Returning past the shallowest resident window: the caller's
        // frame must be filled back from the memory stack.
        return true;
    }
    --depth;
    return false;
}

} // namespace oscar
