/**
 * @file
 * Implementation of the segment execution engine.
 */

#include "cpu/exec_engine.hh"

#include "sim/logging.hh"

namespace oscar
{

SegmentProfile::SegmentProfile(AddressRegion *code, double instr_per_data,
                               double instr_per_fetch)
    : codeRegion(code), instrPerDataAccess(instr_per_data),
      instrPerCodeLine(instr_per_fetch),
      burstSpan(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(2.0 * instr_per_data)))
{
    oscar_assert(code != nullptr);
    oscar_assert(instr_per_data >= 1.0);
    oscar_assert(instr_per_fetch >= 1.0);
}

SegmentProfile::SegmentProfile(const SegmentProfile &other,
                               const RegionRemap &remap)
    : codeRegion(remap(other.codeRegion)),
      instrPerDataAccess(other.instrPerDataAccess),
      instrPerCodeLine(other.instrPerCodeLine), data(other.data),
      burstSpan(other.burstSpan)
{
    for (RegionAccess &ra : data)
        ra.region = remap(ra.region);
    if (other.alias != nullptr)
        alias = std::make_unique<AliasTable>(*other.alias);
}

void
SegmentProfile::addData(AddressRegion *region, double weight,
                        double write_fraction)
{
    oscar_assert(region != nullptr);
    oscar_assert(weight >= 0.0);
    oscar_assert(write_fraction >= 0.0 && write_fraction <= 1.0);
    data.push_back(RegionAccess{region, weight, write_fraction});
    alias.reset();
}

void
SegmentProfile::finalize()
{
    if (data.empty())
        return;
    std::vector<double> weights;
    weights.reserve(data.size());
    for (const RegionAccess &ra : data)
        weights.push_back(ra.weight);
    alias = std::make_unique<AliasTable>(weights);
}

ExecResult
ExecEngine::execute(MemorySystem &mem, CoreId core, ExecContext ctx,
                    InstCount instructions, const SegmentProfile &profile,
                    Rng &rng)
{
    oscar_assert(profile.finalized());
    ExecResult result;
    if (instructions == 0)
        return result;

    const FastBound &burst_bound = profile.burstBound();
    double fetch_accum = 0.0;
    const double fetch_rate = 1.0 / profile.instrPerFetch();

    InstCount remaining = instructions;
    while (remaining > 0) {
        // Instructions until the next data reference: uniform on
        // [1, 2*instrPerData], preserving the configured mean.
        InstCount burst = 1 + rng.nextBoundedFast(burst_bound);
        if (burst > remaining)
            burst = remaining;
        result.cycles += burst;
        remaining -= burst;

        // Instruction-line fetches accrued over the burst.
        fetch_accum += static_cast<double>(burst) * fetch_rate;
        while (fetch_accum >= 1.0) {
            fetch_accum -= 1.0;
            const Addr pc = profile.code()->nextAccess(rng);
            const AccessResult fetch =
                mem.access(core, pc, AccessType::InstrFetch, ctx);
            ++result.fetches;
            if (fetch.latency > 1)
                result.cycles += fetch.latency - 1;
        }

        if (remaining == 0 || !profile.hasData())
            continue;

        const RegionAccess &target = profile.sampleData(rng);
        const bool is_write = rng.nextBool(target.writeFraction);
        const Addr addr = target.region->nextAccess(rng);
        const AccessResult access = mem.access(
            core, addr, is_write ? AccessType::Write : AccessType::Read,
            ctx);
        ++result.dataAccesses;
        // The first cycle of a data reference overlaps the consuming
        // instruction; only the excess stalls the pipeline.
        if (access.latency > 1)
            result.cycles += access.latency - 1;
    }
    return result;
}

} // namespace oscar
