/**
 * @file
 * Implementation of the segment execution engine.
 */

#include "cpu/exec_engine.hh"

#include "sim/logging.hh"

#ifdef OSCAR_TSC_PROFILE
#include <atomic>
#include <cstdio>
#include <x86intrin.h>
#endif

namespace oscar
{

SegmentProfile::SegmentProfile(AddressRegion *code, double instr_per_data,
                               double instr_per_fetch)
    : codeRegion(code), instrPerDataAccess(instr_per_data),
      instrPerCodeLine(instr_per_fetch),
      burstSpan(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(2.0 * instr_per_data)))
{
    oscar_assert(code != nullptr);
    oscar_assert(instr_per_data >= 1.0);
    oscar_assert(instr_per_fetch >= 1.0);
}

SegmentProfile::SegmentProfile(const SegmentProfile &other,
                               const RegionRemap &remap)
    : codeRegion(remap(other.codeRegion)),
      instrPerDataAccess(other.instrPerDataAccess),
      instrPerCodeLine(other.instrPerCodeLine), data(other.data),
      burstSpan(other.burstSpan)
{
    for (RegionAccess &ra : data)
        ra.region = remap(ra.region);
    if (other.alias != nullptr)
        alias = std::make_unique<AliasTable>(*other.alias);
}

void
SegmentProfile::addData(AddressRegion *region, double weight,
                        double write_fraction)
{
    oscar_assert(region != nullptr);
    oscar_assert(weight >= 0.0);
    oscar_assert(write_fraction >= 0.0 && write_fraction <= 1.0);
    data.push_back(RegionAccess{region, weight, write_fraction,
                                BoolThreshold(write_fraction)});
    alias.reset();
}

void
SegmentProfile::finalize()
{
    if (data.empty())
        return;
    std::vector<double> weights;
    weights.reserve(data.size());
    for (const RegionAccess &ra : data)
        weights.push_back(ra.weight);
    alias = std::make_unique<AliasTable>(weights);
}

#ifdef OSCAR_TSC_PROFILE
namespace
{
std::atomic<unsigned long long> g_execTsc{0}, g_accessTsc{0},
    g_refs{0}, g_calls{0};
struct TscDump
{
    ~TscDump()
    {
        std::fprintf(stderr,
                     "[tsc] calls=%llu refs=%llu execTsc=%llu "
                     "accessTsc=%llu\n",
                     g_calls.load(), g_refs.load(), g_execTsc.load(),
                     g_accessTsc.load());
    }
} g_tscDump;
} // namespace
#endif

namespace
{

/**
 * References per accessBatch block. 4096 packed words are 32 KiB —
 * resident in host L1/L2 while a block is generated and then probed —
 * and large enough that per-block costs (buffer bookkeeping, stat
 * flushes) vanish against the per-reference work.
 */
constexpr std::size_t kBatchRefs = 4096;

/**
 * Per-thread block buffer. execute() is a leaf — nothing below it
 * re-enters the engine — so one buffer per thread suffices, and
 * parallel sweep workers never share it.
 */
std::vector<std::uint64_t> &
batchBuffer()
{
    thread_local std::vector<std::uint64_t> buffer;
    return buffer;
}

thread_local bool referenceModeFlag = false;

} // namespace

void
ExecEngine::setReferenceMode(bool on)
{
    referenceModeFlag = on;
}

bool
ExecEngine::referenceMode()
{
    return referenceModeFlag;
}

ExecResult
ExecEngine::execute(MemorySystem &mem, CoreId core, ExecContext ctx,
                    InstCount instructions, const SegmentProfile &profile,
                    Rng &rng)
{
    if (referenceModeFlag) {
        return executeReference(mem, core, ctx, instructions, profile,
                                rng);
    }
    oscar_assert(profile.finalized());
    ExecResult result;
    if (instructions == 0)
        return result;

    const FastBound &burst_bound = profile.burstBound();
    double fetch_accum = 0.0;
    const double fetch_rate = 1.0 / profile.instrPerFetch();
    AddressRegion *const code = profile.code();

    std::vector<std::uint64_t> &refs = batchBuffer();
    refs.resize(kBatchRefs);
    std::uint64_t *const block = refs.data();
    std::uint64_t *const block_end = block + kBatchRefs;
    std::uint64_t *out = block;

    const auto flush = [&] {
#ifdef OSCAR_TSC_PROFILE
        const unsigned long long t0 = __rdtsc();
#endif
        result.cycles += mem.accessBatch(
            core, ctx, block, static_cast<std::size_t>(out - block));
#ifdef OSCAR_TSC_PROFILE
        g_accessTsc += __rdtsc() - t0;
        g_refs += static_cast<unsigned long long>(out - block);
#endif
        out = block;
    };
#ifdef OSCAR_TSC_PROFILE
    const unsigned long long tExec0 = __rdtsc();
    ++g_calls;
#endif

    // Same loop structure and — critically — the same RNG draw
    // sequence as executeReference(); the only difference is that
    // references are packed into a block instead of probed one at a
    // time. A block may flush mid-burst: probing is side-effect-free
    // with respect to generation, so only the block boundary moves.
    InstCount remaining = instructions;
    while (remaining > 0) {
        InstCount burst = 1 + rng.nextBoundedFast(burst_bound);
        if (burst > remaining)
            burst = remaining;
        result.cycles += burst;
        remaining -= burst;

        fetch_accum += static_cast<double>(burst) * fetch_rate;
        while (fetch_accum >= 1.0) {
            fetch_accum -= 1.0;
            *out++ = PackedRef::make(code->nextAccess(rng),
                                     PackedRef::kInstrFetch);
            ++result.fetches;
            if (out == block_end)
                flush();
        }

        if (remaining == 0 || !profile.hasData())
            continue;

        const RegionAccess &target = profile.sampleData(rng);
        const bool is_write = rng.nextBoolFast(target.writeThresh);
        *out++ = PackedRef::make(target.region->nextAccess(rng),
                                 is_write ? PackedRef::kWrite
                                          : PackedRef::kRead);
        ++result.dataAccesses;
        if (out == block_end)
            flush();
    }
    if (out != block)
        flush();
#ifdef OSCAR_TSC_PROFILE
    g_execTsc += __rdtsc() - tExec0;
#endif
    return result;
}

ExecResult
ExecEngine::executeReference(MemorySystem &mem, CoreId core,
                             ExecContext ctx, InstCount instructions,
                             const SegmentProfile &profile, Rng &rng)
{
    oscar_assert(profile.finalized());
    ExecResult result;
    if (instructions == 0)
        return result;

    const FastBound &burst_bound = profile.burstBound();
    double fetch_accum = 0.0;
    const double fetch_rate = 1.0 / profile.instrPerFetch();

    InstCount remaining = instructions;
    while (remaining > 0) {
        // Instructions until the next data reference: uniform on
        // [1, 2*instrPerData], preserving the configured mean.
        InstCount burst = 1 + rng.nextBoundedFast(burst_bound);
        if (burst > remaining)
            burst = remaining;
        result.cycles += burst;
        remaining -= burst;

        // Instruction-line fetches accrued over the burst.
        fetch_accum += static_cast<double>(burst) * fetch_rate;
        while (fetch_accum >= 1.0) {
            fetch_accum -= 1.0;
            const Addr pc = profile.code()->nextAccess(rng);
            const AccessResult fetch =
                mem.access(core, pc, AccessType::InstrFetch, ctx);
            ++result.fetches;
            if (fetch.latency > 1)
                result.cycles += fetch.latency - 1;
        }

        if (remaining == 0 || !profile.hasData())
            continue;

        const RegionAccess &target = profile.sampleData(rng);
        const bool is_write = rng.nextBool(target.writeFraction);
        const Addr addr = target.region->nextAccess(rng);
        const AccessResult access = mem.access(
            core, addr, is_write ? AccessType::Write : AccessType::Read,
            ctx);
        ++result.dataAccesses;
        // The first cycle of a data reference overlaps the consuming
        // instruction; only the excess stalls the pipeline.
        if (access.latency > 1)
            result.cycles += access.latency - 1;
    }
    return result;
}

} // namespace oscar
