file(REMOVE_RECURSE
  "CMakeFiles/example_webserver_consolidation.dir/webserver_consolidation.cpp.o"
  "CMakeFiles/example_webserver_consolidation.dir/webserver_consolidation.cpp.o.d"
  "example_webserver_consolidation"
  "example_webserver_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_webserver_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
