# Empty compiler generated dependencies file for example_webserver_consolidation.
# This may be replaced when dependencies are built.
