# Empty dependencies file for example_simulate.
# This may be replaced when dependencies are built.
