# Empty compiler generated dependencies file for oscar_tests.
# This may be replaced when dependencies are built.
