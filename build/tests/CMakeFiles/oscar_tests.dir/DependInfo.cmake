
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_space.cc" "tests/CMakeFiles/oscar_tests.dir/test_address_space.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_address_space.cc.o.d"
  "/root/repo/tests/test_arch_state.cc" "tests/CMakeFiles/oscar_tests.dir/test_arch_state.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_arch_state.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/oscar_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_coherence_litmus.cc" "tests/CMakeFiles/oscar_tests.dir/test_coherence_litmus.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_coherence_litmus.cc.o.d"
  "/root/repo/tests/test_directory.cc" "tests/CMakeFiles/oscar_tests.dir/test_directory.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_directory.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/oscar_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_exec_engine.cc" "tests/CMakeFiles/oscar_tests.dir/test_exec_engine.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_exec_engine.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/oscar_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/oscar_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interrupts.cc" "tests/CMakeFiles/oscar_tests.dir/test_interrupts.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_interrupts.cc.o.d"
  "/root/repo/tests/test_invocation.cc" "tests/CMakeFiles/oscar_tests.dir/test_invocation.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_invocation.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/oscar_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_memory_system.cc" "tests/CMakeFiles/oscar_tests.dir/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_memory_system.cc.o.d"
  "/root/repo/tests/test_migration_interconnect.cc" "tests/CMakeFiles/oscar_tests.dir/test_migration_interconnect.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_migration_interconnect.cc.o.d"
  "/root/repo/tests/test_offload_policy.cc" "tests/CMakeFiles/oscar_tests.dir/test_offload_policy.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_offload_policy.cc.o.d"
  "/root/repo/tests/test_os_core_queue.cc" "tests/CMakeFiles/oscar_tests.dir/test_os_core_queue.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_os_core_queue.cc.o.d"
  "/root/repo/tests/test_os_service.cc" "tests/CMakeFiles/oscar_tests.dir/test_os_service.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_os_service.cc.o.d"
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/oscar_tests.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_predictor.cc.o.d"
  "/root/repo/tests/test_predictor_stats.cc" "tests/CMakeFiles/oscar_tests.dir/test_predictor_stats.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_predictor_stats.cc.o.d"
  "/root/repo/tests/test_profiles.cc" "tests/CMakeFiles/oscar_tests.dir/test_profiles.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_profiles.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/oscar_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/oscar_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/oscar_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_syscall_catalog.cc" "tests/CMakeFiles/oscar_tests.dir/test_syscall_catalog.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_syscall_catalog.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/oscar_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_threshold_controller.cc" "tests/CMakeFiles/oscar_tests.dir/test_threshold_controller.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_threshold_controller.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/oscar_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/oscar_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oscar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
