# Empty compiler generated dependencies file for oscar.
# This may be replaced when dependencies are built.
