
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/offload_policy.cc" "src/CMakeFiles/oscar.dir/core/offload_policy.cc.o" "gcc" "src/CMakeFiles/oscar.dir/core/offload_policy.cc.o.d"
  "/root/repo/src/core/predictor_stats.cc" "src/CMakeFiles/oscar.dir/core/predictor_stats.cc.o" "gcc" "src/CMakeFiles/oscar.dir/core/predictor_stats.cc.o.d"
  "/root/repo/src/core/run_length_predictor.cc" "src/CMakeFiles/oscar.dir/core/run_length_predictor.cc.o" "gcc" "src/CMakeFiles/oscar.dir/core/run_length_predictor.cc.o.d"
  "/root/repo/src/core/threshold_controller.cc" "src/CMakeFiles/oscar.dir/core/threshold_controller.cc.o" "gcc" "src/CMakeFiles/oscar.dir/core/threshold_controller.cc.o.d"
  "/root/repo/src/cpu/arch_state.cc" "src/CMakeFiles/oscar.dir/cpu/arch_state.cc.o" "gcc" "src/CMakeFiles/oscar.dir/cpu/arch_state.cc.o.d"
  "/root/repo/src/cpu/exec_engine.cc" "src/CMakeFiles/oscar.dir/cpu/exec_engine.cc.o" "gcc" "src/CMakeFiles/oscar.dir/cpu/exec_engine.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/oscar.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/oscar.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/CMakeFiles/oscar.dir/mem/directory.cc.o" "gcc" "src/CMakeFiles/oscar.dir/mem/directory.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/oscar.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/oscar.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/os/interrupts.cc" "src/CMakeFiles/oscar.dir/os/interrupts.cc.o" "gcc" "src/CMakeFiles/oscar.dir/os/interrupts.cc.o.d"
  "/root/repo/src/os/invocation.cc" "src/CMakeFiles/oscar.dir/os/invocation.cc.o" "gcc" "src/CMakeFiles/oscar.dir/os/invocation.cc.o.d"
  "/root/repo/src/os/os_core_queue.cc" "src/CMakeFiles/oscar.dir/os/os_core_queue.cc.o" "gcc" "src/CMakeFiles/oscar.dir/os/os_core_queue.cc.o.d"
  "/root/repo/src/os/os_service.cc" "src/CMakeFiles/oscar.dir/os/os_service.cc.o" "gcc" "src/CMakeFiles/oscar.dir/os/os_service.cc.o.d"
  "/root/repo/src/os/syscall_catalog.cc" "src/CMakeFiles/oscar.dir/os/syscall_catalog.cc.o" "gcc" "src/CMakeFiles/oscar.dir/os/syscall_catalog.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/oscar.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/oscar.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/oscar.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/oscar.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/oscar.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/oscar.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/oscar.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/oscar.dir/sim/stats.cc.o.d"
  "/root/repo/src/system/experiment.cc" "src/CMakeFiles/oscar.dir/system/experiment.cc.o" "gcc" "src/CMakeFiles/oscar.dir/system/experiment.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/oscar.dir/system/system.cc.o" "gcc" "src/CMakeFiles/oscar.dir/system/system.cc.o.d"
  "/root/repo/src/system/system_config.cc" "src/CMakeFiles/oscar.dir/system/system_config.cc.o" "gcc" "src/CMakeFiles/oscar.dir/system/system_config.cc.o.d"
  "/root/repo/src/workload/address_space.cc" "src/CMakeFiles/oscar.dir/workload/address_space.cc.o" "gcc" "src/CMakeFiles/oscar.dir/workload/address_space.cc.o.d"
  "/root/repo/src/workload/profiles.cc" "src/CMakeFiles/oscar.dir/workload/profiles.cc.o" "gcc" "src/CMakeFiles/oscar.dir/workload/profiles.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/oscar.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/oscar.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
