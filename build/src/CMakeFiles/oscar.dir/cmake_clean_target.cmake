file(REMOVE_RECURSE
  "liboscar.a"
)
