# Empty dependencies file for table3_oscore_utilization.
# This may be replaced when dependencies are built.
