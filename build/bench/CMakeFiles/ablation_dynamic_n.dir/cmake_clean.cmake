file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_n.dir/ablation_dynamic_n.cc.o"
  "CMakeFiles/ablation_dynamic_n.dir/ablation_dynamic_n.cc.o.d"
  "ablation_dynamic_n"
  "ablation_dynamic_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
