# Empty dependencies file for ablation_dynamic_n.
# This may be replaced when dependencies are built.
