file(REMOVE_RECURSE
  "CMakeFiles/fig3_binary_prediction.dir/fig3_binary_prediction.cc.o"
  "CMakeFiles/fig3_binary_prediction.dir/fig3_binary_prediction.cc.o.d"
  "fig3_binary_prediction"
  "fig3_binary_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_binary_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
