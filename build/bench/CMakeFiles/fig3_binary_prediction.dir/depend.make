# Empty dependencies file for fig3_binary_prediction.
# This may be replaced when dependencies are built.
