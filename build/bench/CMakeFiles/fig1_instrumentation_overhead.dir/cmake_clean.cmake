file(REMOVE_RECURSE
  "CMakeFiles/fig1_instrumentation_overhead.dir/fig1_instrumentation_overhead.cc.o"
  "CMakeFiles/fig1_instrumentation_overhead.dir/fig1_instrumentation_overhead.cc.o.d"
  "fig1_instrumentation_overhead"
  "fig1_instrumentation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_instrumentation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
