# Empty dependencies file for fig4_threshold_sweep.
# This may be replaced when dependencies are built.
