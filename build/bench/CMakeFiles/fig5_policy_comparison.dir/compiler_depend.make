# Empty compiler generated dependencies file for fig5_policy_comparison.
# This may be replaced when dependencies are built.
